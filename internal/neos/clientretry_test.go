package neos

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func fastRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond}
}

const tinyModel = `var x integer >= 1 <= 10;
minimize obj: 100 / x;
`

func TestClientRetries5xx(t *testing.T) {
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&calls, 1) <= 2 {
			http.Error(w, "shard rebooting", http.StatusServiceUnavailable)
			return
		}
		writeJSON(w, http.StatusOK, &SolveResponse{Status: "optimal", Objective: 10})
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	c.Retry = fastRetryPolicy()
	out, err := c.Solve(context.Background(), &SolveRequest{Model: tinyModel})
	if err != nil {
		t.Fatalf("solve failed despite retry budget: %v", err)
	}
	if out.Status != "optimal" || atomic.LoadInt32(&calls) != 3 {
		t.Fatalf("status=%q calls=%d, want optimal after 3 calls", out.Status, calls)
	}
}

func TestClientRetryExhaustion(t *testing.T) {
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&calls, 1)
		http.Error(w, "still down", http.StatusInternalServerError)
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	c.Retry = fastRetryPolicy()
	_, err := c.Solve(context.Background(), &SolveRequest{Model: tinyModel})
	if err == nil {
		t.Fatal("no error after exhausting retries")
	}
	var se *ServerError
	if !errors.As(err, &se) || se.StatusCode != http.StatusInternalServerError {
		t.Fatalf("err = %v, want wrapped 500 ServerError", err)
	}
	if !strings.Contains(se.Message, "still down") {
		t.Fatalf("server body lost: %q", se.Message)
	}
	if got := atomic.LoadInt32(&calls); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
}

func TestClientNeverRetries4xx(t *testing.T) {
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&calls, 1)
		http.Error(w, "bad JSON: unexpected token", http.StatusBadRequest)
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	c.Retry = fastRetryPolicy()
	_, err := c.Solve(context.Background(), &SolveRequest{Model: "nonsense"})
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want ServerError", err)
	}
	if se.StatusCode != http.StatusBadRequest || se.Retryable() {
		t.Fatalf("unexpected error classification: %+v", se)
	}
	if !strings.Contains(se.Message, "bad JSON") {
		t.Fatalf("plain-text error body not surfaced: %q", se.Message)
	}
	if got := atomic.LoadInt32(&calls); got != 1 {
		t.Fatalf("4xx retried: %d calls", got)
	}
}

func TestServerErrorDecodesJSONBody(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusConflict, map[string]string{"error": "model already queued"})
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	c.Retry = fastRetryPolicy()
	_, err := c.Solve(context.Background(), &SolveRequest{Model: tinyModel})
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want ServerError", err)
	}
	if se.Message != "model already queued" {
		t.Fatalf("JSON error field not decoded: %q", se.Message)
	}
}

func TestClientRetriesTransportError(t *testing.T) {
	var calls int32
	var real http.RoundTripper = http.DefaultTransport
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, &SolveResponse{Status: "optimal"})
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	c.Retry = fastRetryPolicy()
	c.HTTP = &http.Client{Transport: roundTripFunc(func(r *http.Request) (*http.Response, error) {
		if atomic.AddInt32(&calls, 1) <= 2 {
			return nil, fmt.Errorf("connection reset by peer")
		}
		return real.RoundTrip(r)
	})}
	out, err := c.Solve(context.Background(), &SolveRequest{Model: tinyModel})
	if err != nil {
		t.Fatalf("transport errors not retried: %v", err)
	}
	if out.Status != "optimal" || atomic.LoadInt32(&calls) != 3 {
		t.Fatalf("status=%q calls=%d", out.Status, calls)
	}
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

func TestClientRetryRespectsContext(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	c.Retry = RetryPolicy{MaxAttempts: 10, BaseBackoff: time.Hour, MaxBackoff: time.Hour}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Solve(ctx, &SolveRequest{Model: tinyModel})
	if err == nil {
		t.Fatal("expected error")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("retry backoff ignored context cancellation")
	}
}

func TestWaitPollsToCompletion(t *testing.T) {
	_, c := newTestServer(t)
	c.Retry = fastRetryPolicy()
	id, err := c.Submit(context.Background(), &SolveRequest{Model: tinyModel})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	jr, err := c.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if jr.Status != JobDone || jr.Result == nil || jr.Result.Status != "optimal" {
		t.Fatalf("job result %+v", jr)
	}
}

func TestWaitSurfacesFailedJob(t *testing.T) {
	_, c := newTestServer(t)
	c.Retry = fastRetryPolicy()
	id, err := c.Submit(context.Background(), &SolveRequest{Model: tinyModel, Algorithm: "no-such-alg"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	jr, err := c.Wait(ctx, id)
	if err != nil {
		t.Fatalf("failed job should surface via Status, not error: %v", err)
	}
	if jr.Status != JobFailed {
		t.Fatalf("status = %v, want failed", jr.Status)
	}
	if jr.Error == "" && (jr.Result == nil || jr.Result.Error == "") {
		t.Fatalf("failed job carries no error detail: %+v", jr)
	}
}

// TestWaitHonorsRetryAfterOnShed is the regression test for waiters
// hammering a shedding server: a 429 from /result used to abort Wait with
// an error and ignored the server's Retry-After hint entirely. Wait must
// instead keep polling — the job is still queued — with the hint as the
// poll-delay floor, like fleet.Worker's lease loop.
func TestWaitHonorsRetryAfterOnShed(t *testing.T) {
	const hint = 250 * time.Millisecond
	var calls int32
	var afterShed atomic.Int64 // unix-nano of the poll following the shed
	var shedAt atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch atomic.AddInt32(&calls, 1) {
		case 1:
			shedAt.Store(time.Now().UnixNano())
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprintf(w, `{"error":"overloaded: solve queue full","retry_after_ms":%d}`, hint.Milliseconds())
		default:
			afterShed.CompareAndSwap(0, time.Now().UnixNano())
			writeJSON(w, http.StatusOK, &JobResult{ID: 7, Status: JobDone,
				Result: &SolveResponse{Status: "optimal", Objective: 3}})
		}
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	c.Retry = fastRetryPolicy() // base 1ms: without the floor the re-poll lands long before the hint
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	jr, err := c.Wait(ctx, 7)
	if err != nil {
		t.Fatalf("Wait aborted on a shed response: %v", err)
	}
	if jr.Status != JobDone || jr.Result == nil || jr.Result.Objective != 3 {
		t.Fatalf("result after shed = %+v", jr)
	}
	if gap := time.Duration(afterShed.Load() - shedAt.Load()); gap < hint {
		t.Fatalf("Wait re-polled %v after the shed, ignoring the %v Retry-After hint", gap, hint)
	}
}

// TestDoRetryFloorsBackoffAtRetryAfter verifies the retry loop under every
// client call: a 503 carrying a Retry-After hint must not be retried before
// the hint elapses, even when the policy's exponential schedule (and its
// MaxBackoff cap) would retry much sooner.
func TestDoRetryFloorsBackoffAtRetryAfter(t *testing.T) {
	const hint = 250 * time.Millisecond
	var times []time.Time
	var mu sync.Mutex
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		times = append(times, time.Now())
		n := len(times)
		mu.Unlock()
		if n == 1 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, `{"error":"draining","retry_after_ms":%d}`, hint.Milliseconds())
			return
		}
		writeJSON(w, http.StatusOK, &SolveResponse{Status: "optimal", Objective: 10})
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	c.Retry = fastRetryPolicy() // MaxBackoff 5ms — the hint must override it
	out, err := c.Solve(context.Background(), &SolveRequest{Model: tinyModel})
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != "optimal" {
		t.Fatalf("status = %q", out.Status)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(times) != 2 {
		t.Fatalf("server saw %d calls, want 2", len(times))
	}
	if gap := times[1].Sub(times[0]); gap < hint {
		t.Fatalf("retried %v after a 503 with a %v Retry-After hint", gap, hint)
	}
}

func TestWaitHonorsContext(t *testing.T) {
	// A job that never finishes: the server only has workers for real
	// requests, so point Wait at an id that stays queued by stubbing the
	// result endpoint.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, &JobResult{ID: 1, Status: JobQueued})
	}))
	defer srv.Close()
	c := NewClient(srv.URL)
	c.Retry = fastRetryPolicy()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := c.Wait(ctx, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}
