package neos

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

const miniModel = `
param N := 30;
var T >= 0 <= 10000;
var n1 integer >= 1 <= 30;
var n2 integer >= 1 <= 30;
minimize total: T;
subject to t1: 100 / n1 + 5 <= T;
subject to t2: 80 / n2 + 3 <= T;
subject to cap: n1 + n2 <= N;
`

func newTestServer(t *testing.T) (*httptest.Server, *Client) {
	t.Helper()
	s := NewServer(2)
	t.Cleanup(func() { s.Close() })
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return srv, NewClient(srv.URL)
}

func TestHealth(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Get(srv.URL + "/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("health = %d", resp.StatusCode)
	}
}

func TestSynchronousSolve(t *testing.T) {
	_, c := newTestServer(t)
	res, err := c.Solve(context.Background(), &SolveRequest{Model: miniModel})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != "optimal" {
		t.Fatalf("status = %q (err %q)", res.Status, res.Error)
	}
	if res.Objective <= 0 || math.IsNaN(res.Objective) {
		t.Fatalf("objective = %v", res.Objective)
	}
	n1, ok1 := res.Variables["n1"]
	n2, ok2 := res.Variables["n2"]
	if !ok1 || !ok2 {
		t.Fatalf("variables missing: %v", res.Variables)
	}
	if n1+n2 > 30 {
		t.Fatalf("capacity violated: %v + %v", n1, n2)
	}
}

func TestAsyncSubmitAndPoll(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()
	id, err := c.Submit(ctx, &SolveRequest{Model: miniModel})
	if err != nil {
		t.Fatal(err)
	}
	if id <= 0 {
		t.Fatalf("id = %d", id)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		jr, err := c.Result(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if jr.Status == JobDone {
			if jr.Result == nil || jr.Result.Status != "optimal" {
				t.Fatalf("job result: %+v", jr.Result)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %d stuck in %v", id, jr.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestBadRequests(t *testing.T) {
	srv, c := newTestServer(t)

	// Empty model.
	if _, err := c.Solve(context.Background(), &SolveRequest{}); err == nil {
		t.Error("empty model accepted")
	}
	// GET on /solve.
	resp, err := http.Get(srv.URL + "/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /solve = %d", resp.StatusCode)
	}
	// Malformed JSON.
	resp2, err := http.Post(srv.URL+"/solve", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON = %d", resp2.StatusCode)
	}
	// Unknown job.
	if _, err := c.Result(context.Background(), 999); err == nil {
		t.Error("unknown job accepted")
	}
	// Bad id.
	resp3, err := http.Get(srv.URL + "/result?id=xyz")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Errorf("bad id = %d", resp3.StatusCode)
	}
}

func TestParseErrorSurfaced(t *testing.T) {
	_, c := newTestServer(t)
	res, err := c.Solve(context.Background(), &SolveRequest{Model: "var x nonsense;"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != "error" || res.Error == "" {
		t.Fatalf("parse error not surfaced: %+v", res)
	}
}

func TestUnknownAlgorithm(t *testing.T) {
	_, c := newTestServer(t)
	res, err := c.Solve(context.Background(), &SolveRequest{Model: miniModel, Algorithm: "simplexx"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != "error" {
		t.Fatalf("unknown algorithm accepted: %+v", res)
	}
}

func TestInfeasibleModelReported(t *testing.T) {
	_, c := newTestServer(t)
	res, err := c.Solve(context.Background(), &SolveRequest{Model: `
var n integer >= 1 <= 10;
minimize o: n;
s.t. c: 100 / n <= 1;
`})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != "infeasible" {
		t.Fatalf("status = %q, want infeasible", res.Status)
	}
}

func TestConcurrentSubmissions(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()
	ids := make([]int64, 6)
	for i := range ids {
		id, err := c.Submit(ctx, &SolveRequest{Model: miniModel})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	deadline := time.Now().Add(60 * time.Second)
	for _, id := range ids {
		for {
			jr, err := c.Result(ctx, id)
			if err != nil {
				t.Fatal(err)
			}
			if jr.Status == JobDone {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %d never finished", id)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}
