package neos

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hslb/internal/faultnet"
)

// newFleetShard starts a shard whose SelfURL is its own live httptest URL:
// the listener comes up first (behind an atomically swapped handler), the
// URL goes into cfg.SelfURL, then the Server is built and plugged in.
func newFleetShard(t *testing.T, cfg Config) (*Server, *httptest.Server, *Client) {
	t.Helper()
	type handlerBox struct{ h http.Handler }
	var h atomic.Value
	h.Store(handlerBox{http.NotFoundHandler()})
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.Load().(handlerBox).h.ServeHTTP(w, r)
	}))
	t.Cleanup(hs.Close)
	cfg.SelfURL = hs.URL
	s, err := NewServerWith(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	h.Store(handlerBox{s.Handler()})
	return s, hs, NewClient(hs.URL)
}

// replCfg is the baseline config of one replicated shard: R=2, persistent,
// anti-entropy ticker off so tests drive sweeps deterministically.
func replCfg(t *testing.T, peers ...string) Config {
	return Config{
		MaxConcurrent:       2,
		StoreDir:            t.TempDir(),
		CachePersist:        true,
		Replicate:           2,
		AntiEntropyInterval: -1,
		Peers:               peers,
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// hasPersisted reports whether the shard holds key in its result store.
func hasPersisted(s *Server, key string) bool {
	_, ok := s.results.Head(solveKeyPrefix + key)
	return ok
}

// TestReplicateOnFill: with R=2 a solve on one shard lands, persisted, on
// its replica owner without that owner ever invoking a solver — and the
// replica then answers from its own cache.
func TestReplicateOnFill(t *testing.T) {
	// Two members, R=2: each owns every key, so one solve must replicate.
	sbA, hsA, _ := newFleetShard(t, replCfg(t))
	sbB, hsB, cB := newFleetShard(t, replCfg(t, hsA.URL))
	sbA.peering.setPeers([]string{hsB.URL})

	cA := NewClient(hsA.URL)
	ctx := context.Background()
	out, err := cA.Solve(ctx, &SolveRequest{Model: miniModel})
	if err != nil || out.Status != "optimal" {
		t.Fatalf("solve on A: %+v, %v", out, err)
	}
	key, err := RequestKey(&SolveRequest{Model: miniModel})
	if err != nil {
		t.Fatal(err)
	}
	if !hasPersisted(sbA, key) {
		t.Fatal("A did not persist its own fill")
	}
	waitFor(t, "replica to land on B", func() bool { return hasPersisted(sbB, key) })

	mB, err := cB.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if mB.Solves.Count != 0 {
		t.Fatalf("replica owner invoked its solver %d times; replication must cost zero solves", mB.Solves.Count)
	}
	if mB.Replication == nil || mB.Replication.Ingested != 1 || mB.Replication.Factor != 2 {
		t.Fatalf("B replication metrics = %+v, want 1 ingest at factor 2", mB.Replication)
	}
	mA, err := cA.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if mA.Replication == nil || mA.Replication.Pushes != 1 {
		t.Fatalf("A replication metrics = %+v, want 1 push", mA.Replication)
	}

	// The replica answers the same model from its own cache: zero solver
	// invocations fleet-wide beyond the original.
	outB, err := cB.Solve(ctx, &SolveRequest{Model: miniModelReformatted})
	if err != nil || outB.Status != "optimal" || outB.Objective != out.Objective {
		t.Fatalf("solve on B = %+v, %v; want A's cached answer", outB, err)
	}
	if m, _ := cB.Metrics(ctx); m.Solves.Count != 0 {
		t.Fatalf("B solved instead of using the replica (%d solves)", m.Solves.Count)
	}
}

// TestReplicateIngestValidation: the ingest endpoint re-applies the
// persistence bar — degraded, deadline and error answers are refused with
// 422 whatever the sender claims, malformed keys with 400, and a server
// without replication exposes no ingest at all.
func TestReplicateIngestValidation(t *testing.T) {
	sb, hs, _ := newFleetShard(t, replCfg(t))
	goodKey := strings.Repeat("ab", 32)

	post := func(key string, body interface{}) int {
		blob, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(hs.URL+"/replicate/"+key, "application/json", strings.NewReader(string(blob)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	for _, bad := range []*SolveResponse{
		{Status: "deadline", Objective: 1},
		{Status: "error", Error: "boom"},
		{Status: "optimal", Quality: "degraded", Objective: 2},
	} {
		if code := post(goodKey, bad); code != http.StatusUnprocessableEntity {
			t.Fatalf("ingest of %q/%q replica: status %d, want 422", bad.Status, bad.Quality, code)
		}
		if hasPersisted(sb, goodKey) {
			t.Fatalf("best-effort replica %q was persisted", bad.Status)
		}
	}
	if code := post("not-a-key", &SolveResponse{Status: "optimal"}); code != http.StatusBadRequest {
		t.Fatalf("bad key: status %d, want 400", code)
	}
	if code := post(strings.Repeat("AB", 32), &SolveResponse{Status: "optimal"}); code != http.StatusBadRequest {
		t.Fatalf("uppercase key: status %d, want 400", code)
	}
	if code := post(goodKey, &SolveResponse{Status: "optimal", Objective: 7}); code != http.StatusNoContent {
		t.Fatalf("valid replica: status %d, want 204", code)
	}
	waitFor(t, "valid replica to persist", func() bool { return hasPersisted(sb, goodKey) })
	if m := sb.replicationMetrics(); m.Ingested != 1 || m.Rejects != 5 {
		t.Fatalf("metrics = %+v, want 1 ingest / 5 rejects", m)
	}

	// Replication off: the ingest surface does not exist.
	_, plain, _ := newServerWith(t, Config{MaxConcurrent: 2, StoreDir: t.TempDir(), CachePersist: true})
	resp, err := http.Post(plain.URL+"/replicate/"+goodKey, "application/json",
		strings.NewReader(`{"status":"optimal"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unreplicated server ingest: status %d, want 404", resp.StatusCode)
	}
}

// TestAntiEntropyAfterMembershipChange: a shard that joins the ring after
// results were solved converges to holding its share — push repair from the
// old owner, pull repair by the new one — with zero solver invocations.
func TestAntiEntropyAfterMembershipChange(t *testing.T) {
	// A starts alone and solves two models; every key's owner set is {A}.
	sbA, hsA, cA := newFleetShard(t, replCfg(t))
	ctx := context.Background()
	models := []string{miniModel, "var x integer >= 0 <= 9; maximize o: x;"}
	keys := make([]string, len(models))
	for i, m := range models {
		if out, err := cA.Solve(ctx, &SolveRequest{Model: m}); err != nil || out.Status != "optimal" {
			t.Fatalf("seed solve %d: %+v, %v", i, out, err)
		}
		k, err := RequestKey(&SolveRequest{Model: m})
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = k
	}
	if m := sbA.replicationMetrics(); m.Pushes != 0 {
		t.Fatalf("solo shard pushed %d replicas", m.Pushes)
	}

	// B joins; both sides learn the new membership.
	sbB, hsB, cB := newFleetShard(t, replCfg(t, hsA.URL))
	resp, err := http.Post(hsA.URL+"/admin/peers", "application/json",
		strings.NewReader(fmt.Sprintf(`{"peers":[%q]}`, hsB.URL)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin peers: status %d", resp.StatusCode)
	}

	// The membership change kicked A's sweeper (push repair); every key is
	// now owned by both members, so both keys land on B.
	for _, k := range keys {
		k := k
		waitFor(t, "push repair of "+k[:12], func() bool { return hasPersisted(sbB, k) })
	}
	if m, _ := cB.Metrics(ctx); m.Solves.Count != 0 {
		t.Fatalf("anti-entropy cost B %d solver invocations", m.Solves.Count)
	}
	mA, _ := cA.Metrics(ctx)
	if mA.Replication.SweepPushed == 0 {
		t.Fatalf("A sweep metrics = %+v, want sweep pushes", mA.Replication)
	}

	// Pull repair is equivalent and idempotent: wipe nothing, just run B's
	// sweep — everything already present, so it pulls nothing new; then
	// prove the pull side works by wiping B's knowledge of one key from the
	// cache only and re-sweeping against A.
	sbB.sweepOnce()
	mB, _ := cB.Metrics(ctx)
	if mB.Replication.Sweeps == 0 {
		t.Fatalf("B sweep did not run: %+v", mB.Replication)
	}
}

// TestAntiEntropyPullRepair: a joining shard with pull-only knowledge (the
// old owner never learns about it) still converges by asking /keys and
// fetching what it now owns.
func TestAntiEntropyPullRepair(t *testing.T) {
	_, hsA, cA := newFleetShard(t, replCfg(t))
	ctx := context.Background()
	if out, err := cA.Solve(ctx, &SolveRequest{Model: miniModel}); err != nil || out.Status != "optimal" {
		t.Fatalf("seed solve: %+v, %v", out, err)
	}
	key, err := RequestKey(&SolveRequest{Model: miniModel})
	if err != nil {
		t.Fatal(err)
	}

	// B knows A, but A never learns about B: only B's pull side can repair.
	sbB, _, cB := newFleetShard(t, replCfg(t, hsA.URL))
	sbB.sweepOnce()
	if !hasPersisted(sbB, key) {
		t.Fatal("pull repair did not fetch the key B now owns")
	}
	mB, _ := cB.Metrics(ctx)
	if mB.Replication.SweepPulled != 1 || mB.Solves.Count != 0 {
		t.Fatalf("B metrics = %+v solves=%d, want 1 sweep pull and 0 solves",
			mB.Replication, mB.Solves.Count)
	}
}

// TestPartitionedPeerDegradesWithinBudget: a network partition between a
// shard and its peer must cost at most the peer budget — the solve then
// proceeds locally, the consult is counted as budget-exhausted (not a peer
// error), and the log line names the partitioned peer. Exactly one
// terminal outcome per request.
func TestPartitionedPeerDegradesWithinBudget(t *testing.T) {
	_, hsA, cA := newFleetShard(t, replCfg(t))
	ctx := context.Background()
	if out, err := cA.Solve(ctx, &SolveRequest{Model: miniModel}); err != nil || out.Status != "optimal" {
		t.Fatalf("seed solve: %+v, %v", out, err)
	}

	// B reaches A only through a partitioned proxy.
	proxy, err := faultnet.Listen(strings.TrimPrefix(hsA.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proxy.Close)
	proxy.SetPartitioned(true)

	var logLines []string
	cfg := Config{
		MaxConcurrent: 2,
		StoreDir:      t.TempDir(),
		CachePersist:  true,
		Peers:         []string{proxy.URL()},
		PeerBudget:    100 * time.Millisecond,
		Logf: func(format string, args ...interface{}) {
			logLines = append(logLines, fmt.Sprintf(format, args...))
		},
	}
	_, _, cB := newServerWith(t, cfg)

	start := time.Now()
	out, err := cB.Solve(ctx, &SolveRequest{Model: miniModel})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != "optimal" || out.Quality != "" {
		t.Fatalf("solve across partition = %+v, want one full-quality local answer", out)
	}
	// Budget (100ms) + the local solve; seconds of slack for a loaded host.
	if elapsed > 5*time.Second {
		t.Fatalf("partitioned consult took %v; the budget must bound it", elapsed)
	}
	m, err := cB.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Solves.Count != 1 {
		t.Fatalf("%d solver invocations, want exactly 1 (one terminal outcome per request)", m.Solves.Count)
	}
	if m.Peer == nil || m.Peer.BudgetExhausted == 0 {
		t.Fatalf("peer metrics = %+v, want the partition counted as budget exhaustion", m.Peer)
	}
	if m.Peer.Hits != 0 {
		t.Fatalf("peer metrics = %+v: a partitioned peer cannot produce hits", m.Peer)
	}
	found := false
	for _, line := range logLines {
		if strings.Contains(line, "budget") && strings.Contains(line, proxy.URL()) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no consult log line names the partitioned peer %s: %q", proxy.URL(), logLines)
	}

	// Heal: the next miss consults successfully again.
	proxy.SetPartitioned(false)
	out2, err := cB.Solve(ctx, &SolveRequest{Model: "var y integer >= 0 <= 5; maximize o: y;"})
	if err != nil || out2.Status != "optimal" {
		t.Fatalf("post-heal solve: %+v, %v", out2, err)
	}
}

// TestReplicationPushRetriesAcrossPartition: a push that hits a partitioned
// owner retries with backoff and delivers once the partition heals — the
// write path is best-effort but persistent.
func TestReplicationPushRetriesAcrossPartition(t *testing.T) {
	sbB, hsB, _ := newFleetShard(t, replCfg(t))
	proxy, err := faultnet.Listen(strings.TrimPrefix(hsB.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proxy.Close)
	proxy.SetRefuse(true)

	sbA, hsA, cA := newFleetShard(t, replCfg(t, proxy.URL()))
	_ = hsA
	sbB.peering.setPeers(nil) // B never dials A; only the push path matters

	ctx := context.Background()
	if out, err := cA.Solve(ctx, &SolveRequest{Model: miniModel}); err != nil || out.Status != "optimal" {
		t.Fatalf("solve: %+v, %v", out, err)
	}
	key, err := RequestKey(&SolveRequest{Model: miniModel})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "push attempts against the dead owner", func() bool {
		return sbA.repl.pushErrors.Load() > 0
	})
	if hasPersisted(sbB, key) {
		t.Fatal("replica crossed a refusing proxy")
	}

	proxy.SetRefuse(false)
	waitFor(t, "replica delivery after heal", func() bool { return hasPersisted(sbB, key) })
	waitFor(t, "push counter after heal", func() bool { return sbA.repl.pushes.Load() == 1 })
	if m := sbA.replicationMetrics(); m.PushRetries == 0 {
		t.Fatalf("push metrics after heal = %+v, want retries counted", m)
	}
}
