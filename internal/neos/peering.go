package neos

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Cache peering. A shard behind the fleet router normally sees every
// request for its digests, but ring resizes, failovers and bounded-load
// spills hand digests to shards that never solved them. Before paying for
// a solver invocation on a cache miss, a shard with Config.Peers consults
// its ring siblings: GET /history/solve/{key}?limit=1 names the peer's
// newest persisted result for the model, GET /blob/{hash} fetches the
// bytes, and a full-quality response warms the local cache — so a digest
// migrating across the ring carries its answer with it instead of being
// re-solved.
//
// The consult is strictly bounded (PeerBudget across all peers) and
// strictly validating: transport errors, 404s (peer never solved it),
// integrity failures (the peer's /blob refuses corrupt chunks with a 500),
// unparseable bytes, and best-effort answers ("error"/"deadline" status or
// degraded quality) all fall through to the local solver. Peering runs
// inside the solve singleflight, so a thundering herd on one digest costs
// one consult, not one per request.

// defaultPeerBudget bounds one solve's whole peer consult when
// Config.PeerBudget is unset. Peer fetches are two small local-network
// round-trips; a solver invocation costs milliseconds to minutes.
const defaultPeerBudget = 150 * time.Millisecond

// peering is the sibling-consult state hung off a Server.
type peering struct {
	peers  []string
	budget time.Duration
	http   *http.Client

	hits   atomic.Uint64 // cache fills served by a sibling
	misses atomic.Uint64 // consults where no sibling had the key
	errs   atomic.Uint64 // peer responses rejected (transport, corrupt, junk)
}

// newPeering builds the consult state, or nil when cfg names no peers.
func newPeering(cfg Config) *peering {
	var peers []string
	seen := map[string]bool{}
	for _, u := range cfg.Peers {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" || seen[u] {
			continue
		}
		seen[u] = true
		peers = append(peers, u)
	}
	if len(peers) == 0 {
		return nil
	}
	budget := cfg.PeerBudget
	if budget <= 0 {
		budget = defaultPeerBudget
	}
	return &peering{
		peers:  peers,
		budget: budget,
		// A dedicated client: the consult must never inherit a proxied
		// default transport's cookie jar or an unbounded timeout.
		http: &http.Client{Timeout: budget},
	}
}

// order returns the peers in the key's rendezvous order — the same
// highest-random-weight rule the router uses — so every shard consulting
// for one digest walks its siblings in the same sequence and the digest's
// likeliest holders are asked first.
func (p *peering) order(key string) []string {
	type ranked struct {
		peer  string
		score uint64
	}
	rs := make([]ranked, len(p.peers))
	for i, peer := range p.peers {
		h := sha256.New()
		io.WriteString(h, peer)
		h.Write([]byte{0})
		io.WriteString(h, key)
		var sum [sha256.Size]byte
		rs[i] = ranked{peer, binary.BigEndian.Uint64(h.Sum(sum[:0]))}
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].score != rs[j].score {
			return rs[i].score > rs[j].score
		}
		return rs[i].peer < rs[j].peer
	})
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.peer
	}
	return out
}

// fetch asks the siblings for the key's persisted result, returning the
// first full-quality response or nil (local solve). The shared budget
// bounds the whole walk: a slow peer eats the remaining peers' time, which
// is the deliberate trade — peering may only ever delay a solve by budget.
func (p *peering) fetch(ctx context.Context, key string) *SolveResponse {
	ctx, cancel := context.WithTimeout(ctx, p.budget)
	defer cancel()
	for _, peer := range p.order(key) {
		if ctx.Err() != nil {
			break
		}
		resp, ok := p.fetchFrom(ctx, peer, key)
		if resp != nil {
			p.hits.Add(1)
			return resp
		}
		if !ok {
			p.errs.Add(1)
		}
	}
	p.misses.Add(1)
	return nil
}

// fetchFrom asks one peer. It returns (response, true) on a usable hit,
// (nil, true) on a clean miss (the peer simply never solved the model),
// and (nil, false) when the peer misbehaved — transport failure, corrupt
// blob, undecodable or best-effort payload.
func (p *peering) fetchFrom(ctx context.Context, peer, key string) (*SolveResponse, bool) {
	var history []HistoryEntry
	status, err := p.getJSON(ctx, fmt.Sprintf("%s/history/%s%s?limit=1", peer, solveKeyPrefix, key), &history)
	if err != nil {
		return nil, status == http.StatusNotFound // 404: peer never solved it
	}
	if len(history) == 0 || history[0].Value == "" {
		return nil, true
	}
	var resp SolveResponse
	// A corrupt chunk surfaces here as the peer's 500 ("blob failed
	// integrity verification") and is treated exactly like junk bytes:
	// rejected, never warmed.
	if _, err := p.getJSON(ctx, peer+"/blob/"+history[0].Value, &resp); err != nil {
		return nil, false
	}
	if !peerWarmable(&resp) {
		return nil, false
	}
	return &resp, true
}

// getJSON GETs url and decodes the body into out, returning the HTTP
// status (0 on transport failure) and an error for any non-200 or
// undecodable response.
func (p *peering) getJSON(ctx context.Context, url string, out interface{}) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := p.http.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxRequestBody))
	if err != nil {
		return resp.StatusCode, err
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, fmt.Errorf("peer: %s: status %d", url, resp.StatusCode)
	}
	if err := json.Unmarshal(body, out); err != nil {
		return resp.StatusCode, fmt.Errorf("peer: %s: %v", url, err)
	}
	return resp.StatusCode, nil
}

// peerWarmable applies the same bar cacheBackend.Save applies locally: only
// certified full-quality answers may warm a cache. A peer is trusted for
// bytes, not for judgement — re-validate here even though well-behaved
// peers never persist best-effort results in the first place.
func peerWarmable(resp *SolveResponse) bool {
	switch resp.Status {
	case "", "error", "deadline":
		return false
	}
	return resp.Quality == ""
}

// PeerMetrics is the /metrics section describing cache peering.
type PeerMetrics struct {
	// Peers is the configured sibling count.
	Peers int `json:"peers"`
	// Hits counts solves answered from a sibling's persisted result with
	// zero local solver invocations; Misses counts consults where no
	// sibling had the key; Errors counts rejected peer responses
	// (transport failures, corrupt blobs, junk or best-effort payloads).
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Errors uint64 `json:"errors"`
}

func (s *Server) peerMetrics() *PeerMetrics {
	if s.peering == nil {
		return nil
	}
	return &PeerMetrics{
		Peers:  len(s.peering.peers),
		Hits:   s.peering.hits.Load(),
		Misses: s.peering.misses.Load(),
		Errors: s.peering.errs.Load(),
	}
}
