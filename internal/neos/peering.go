package neos

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Cache peering. A shard behind the fleet router normally sees every
// request for its digests, but ring resizes, failovers and bounded-load
// spills hand digests to shards that never solved them. Before paying for
// a solver invocation on a cache miss, a shard with Config.Peers consults
// its ring siblings: GET /history/solve/{key}?limit=1 names the peer's
// newest persisted result for the model, GET /blob/{hash} fetches the
// bytes, and a full-quality response warms the local cache — so a digest
// migrating across the ring carries its answer with it instead of being
// re-solved.
//
// The consult is strictly bounded (PeerBudget across all peers) and
// strictly validating: transport errors, 404s (peer never solved it),
// integrity failures (the peer's /blob refuses corrupt chunks with a 500),
// unparseable bytes, and best-effort answers ("error"/"deadline" status or
// degraded quality) all fall through to the local solver. Peering runs
// inside the solve singleflight, so a thundering herd on one digest costs
// one consult, not one per request.
//
// The peer set is mutable: POST /admin/peers (and the replication layer's
// membership plumbing) swap it on a live server via setPeers.

// defaultPeerBudget bounds one solve's whole peer consult when
// Config.PeerBudget is unset. Peer fetches are two small local-network
// round-trips; a solver invocation costs milliseconds to minutes.
const defaultPeerBudget = 150 * time.Millisecond

// peering is the sibling-consult state hung off a Server.
type peering struct {
	mu     sync.RWMutex
	peers  []string
	budget time.Duration
	http   *http.Client
	logf   func(format string, args ...interface{})

	hits   atomic.Uint64 // cache fills served by a sibling
	misses atomic.Uint64 // consults where no sibling had the key
	errs   atomic.Uint64 // peer responses rejected (transport, corrupt, junk)
	// budgetExhausted counts consults the shared PeerBudget cut short
	// before every sibling was asked — the signature of a partitioned or
	// slow peer eating the walk, distinct from errors and clean misses.
	budgetExhausted atomic.Uint64
}

// normalizePeers trims, deduplicates and canonicalizes a peer URL list.
func normalizePeers(urls []string) []string {
	var peers []string
	seen := map[string]bool{}
	for _, u := range urls {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" || seen[u] {
			continue
		}
		seen[u] = true
		peers = append(peers, u)
	}
	return peers
}

// newPeering builds the consult state. The peer set may be empty (and grown
// later through setPeers); with no peers the consult is skipped entirely.
func newPeering(cfg Config, logf func(format string, args ...interface{})) *peering {
	budget := cfg.PeerBudget
	if budget <= 0 {
		budget = defaultPeerBudget
	}
	return &peering{
		peers:  normalizePeers(cfg.Peers),
		budget: budget,
		logf:   logf,
		// A dedicated client: the consult must never inherit a proxied
		// default transport's cookie jar or an unbounded timeout.
		http: &http.Client{Timeout: budget},
	}
}

// peerList snapshots the current peer set.
func (p *peering) peerList() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return append([]string(nil), p.peers...)
}

// setPeers replaces the peer set on a live server.
func (p *peering) setPeers(urls []string) {
	peers := normalizePeers(urls)
	p.mu.Lock()
	p.peers = peers
	p.mu.Unlock()
}

// rendezvousOrder sorts members into key's deterministic preference order:
// descending first-8-bytes-of-SHA-256(member || 0x00 || key), member string
// as the (practically unreachable) tie-break. This is byte-identical to the
// router's shard placement, so when members are the fleet's shard base URLs
// a key's replica owners are exactly the router's failover order.
func rendezvousOrder(members []string, key string) []string {
	type ranked struct {
		member string
		score  uint64
	}
	rs := make([]ranked, len(members))
	for i, m := range members {
		h := sha256.New()
		io.WriteString(h, m)
		h.Write([]byte{0})
		io.WriteString(h, key)
		var sum [sha256.Size]byte
		rs[i] = ranked{m, binary.BigEndian.Uint64(h.Sum(sum[:0]))}
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].score != rs[j].score {
			return rs[i].score > rs[j].score
		}
		return rs[i].member < rs[j].member
	})
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.member
	}
	return out
}

// order returns the peers in the key's rendezvous order — the same
// highest-random-weight rule the router uses — so every shard consulting
// for one digest walks its siblings in the same sequence and the digest's
// likeliest holders are asked first.
func (p *peering) order(key string) []string {
	return rendezvousOrder(p.peerList(), key)
}

// fetch asks the siblings for the key's persisted result, returning the
// first full-quality response or nil (local solve). The shared budget
// bounds the whole walk: a slow peer eats the remaining peers' time, which
// is the deliberate trade — peering may only ever delay a solve by budget.
func (p *peering) fetch(ctx context.Context, key string) *SolveResponse {
	ctx, cancel := context.WithTimeout(ctx, p.budget)
	defer cancel()
	for _, peer := range p.order(key) {
		if ctx.Err() != nil {
			// The budget died before this sibling was even asked.
			p.budgetExhausted.Add(1)
			p.misses.Add(1)
			if p.logf != nil {
				p.logf("peer consult for %.12s…: budget %v exhausted before asking %s", key, p.budget, peer)
			}
			return nil
		}
		resp, ok := fetchPersisted(ctx, p.http, peer, key)
		if resp != nil {
			p.hits.Add(1)
			if p.logf != nil {
				p.logf("peer consult for %.12s…: warmed from %s", key, peer)
			}
			return resp
		}
		if !ok {
			if ctx.Err() != nil {
				// The failure is the budget firing mid-fetch, not the peer
				// misbehaving: count exhaustion, not a peer error.
				p.budgetExhausted.Add(1)
				p.misses.Add(1)
				if p.logf != nil {
					p.logf("peer consult for %.12s…: budget %v exhausted talking to %s", key, p.budget, peer)
				}
				return nil
			}
			p.errs.Add(1)
			if p.logf != nil {
				p.logf("peer consult for %.12s…: rejected response from %s", key, peer)
			}
		}
	}
	p.misses.Add(1)
	return nil
}

// fetchPersisted asks one fleet member for its persisted result of key:
// GET /history/solve/{key}?limit=1 names the newest commit, GET /blob/{hash}
// fetches the bytes. It returns (response, true) on a usable full-quality
// hit, (nil, true) on a clean miss (the member simply never solved it), and
// (nil, false) when the member misbehaved — transport failure, corrupt blob,
// undecodable or best-effort payload. Shared by the miss-path peer consult
// and the anti-entropy sweeper's pull side.
func fetchPersisted(ctx context.Context, hc *http.Client, peer, key string) (*SolveResponse, bool) {
	var history []HistoryEntry
	status, err := getJSON(ctx, hc, fmt.Sprintf("%s/history/%s%s?limit=1", peer, solveKeyPrefix, key), &history)
	if err != nil {
		return nil, status == http.StatusNotFound // 404: peer never solved it
	}
	if len(history) == 0 || history[0].Value == "" {
		return nil, true
	}
	var resp SolveResponse
	// A corrupt chunk surfaces here as the peer's 500 ("blob failed
	// integrity verification") and is treated exactly like junk bytes:
	// rejected, never warmed.
	if _, err := getJSON(ctx, hc, peer+"/blob/"+history[0].Value, &resp); err != nil {
		return nil, false
	}
	if !peerWarmable(&resp) {
		return nil, false
	}
	return &resp, true
}

// getJSON GETs url and decodes the body into out, returning the HTTP
// status (0 on transport failure) and an error for any non-200 or
// undecodable response.
func getJSON(ctx context.Context, hc *http.Client, url string, out interface{}) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxRequestBody))
	if err != nil {
		return resp.StatusCode, err
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, fmt.Errorf("peer: %s: status %d", url, resp.StatusCode)
	}
	if err := json.Unmarshal(body, out); err != nil {
		return resp.StatusCode, fmt.Errorf("peer: %s: %v", url, err)
	}
	return resp.StatusCode, nil
}

// peerWarmable applies the same bar cacheBackend.Save applies locally: only
// certified full-quality answers may warm a cache. A peer is trusted for
// bytes, not for judgement — re-validate here even though well-behaved
// peers never persist best-effort results in the first place. Replication
// ingest (POST /replicate/{key}) applies this same bar.
func peerWarmable(resp *SolveResponse) bool {
	switch resp.Status {
	case "", "error", "deadline":
		return false
	}
	return resp.Quality == ""
}

// PeerMetrics is the /metrics section describing cache peering.
type PeerMetrics struct {
	// Peers is the configured sibling count.
	Peers int `json:"peers"`
	// Hits counts solves answered from a sibling's persisted result with
	// zero local solver invocations; Misses counts consults where no
	// sibling had the key; Errors counts rejected peer responses
	// (transport failures, corrupt blobs, junk or best-effort payloads).
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Errors uint64 `json:"errors"`
	// BudgetExhausted counts consults the shared PeerBudget cut short
	// before every sibling answered — a partitioned or slow peer burning
	// the walk. Such consults also count under Misses (they fell through
	// to a local solve) but never under Errors.
	BudgetExhausted uint64 `json:"budget_exhausted"`
}

func (s *Server) peerMetrics() *PeerMetrics {
	p := s.peering
	if p == nil {
		return nil
	}
	m := &PeerMetrics{
		Peers:           len(p.peerList()),
		Hits:            p.hits.Load(),
		Misses:          p.misses.Load(),
		Errors:          p.errs.Load(),
		BudgetExhausted: p.budgetExhausted.Load(),
	}
	if m.Peers == 0 && m.Hits == 0 && m.Misses == 0 && m.Errors == 0 && m.BudgetExhausted == 0 {
		// A never-peered server keeps its /metrics document unchanged.
		return nil
	}
	return m
}
