package neos

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hslb/internal/jobstore"
)

// miniModelReformatted is miniModel with comments, reordered statements and
// respelled numerals — a different byte stream, the same optimization
// problem, so it must hit the same cache entry.
const miniModelReformatted = `# same model, different text
param NODES := 3e1;
var n2 integer >= 1 <= 30;
var n1 integer >= 1 <= 30;
var T >= 0.0 <= 10000;
subject to cap: n2 + n1 <= NODES;
subject to t2: 3 + 80 / n2 <= T;
subject to t1: 5.0 + 100 / n1 <= T;
minimize total: T;
`

func newServerWith(t *testing.T, cfg Config) (*Server, *httptest.Server, *Client) {
	t.Helper()
	s, err := NewServerWith(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs, NewClient(hs.URL)
}

func TestSolveCacheHit(t *testing.T) {
	_, _, c := newServerWith(t, Config{MaxConcurrent: 2})
	ctx := context.Background()

	first, err := c.Solve(ctx, &SolveRequest{Model: miniModel})
	if err != nil {
		t.Fatal(err)
	}
	// Second request: equivalent model, reformatted source.
	second, err := c.Solve(ctx, &SolveRequest{Model: miniModelReformatted})
	if err != nil {
		t.Fatal(err)
	}
	if first.Status != "optimal" || second.Status != "optimal" {
		t.Fatalf("statuses = %q, %q", first.Status, second.Status)
	}
	if first.Objective != second.Objective {
		t.Fatalf("objectives differ: %v vs %v", first.Objective, second.Objective)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Solves.Count != 1 {
		t.Fatalf("solver invoked %d times, want 1 (cache must absorb the second request)", m.Solves.Count)
	}
	if m.Cache.Hits != 1 || m.Cache.Misses != 1 {
		t.Fatalf("cache stats = %+v", m.Cache)
	}
}

func TestDifferentOptionsMissCache(t *testing.T) {
	_, _, c := newServerWith(t, Config{MaxConcurrent: 2})
	ctx := context.Background()
	if _, err := c.Solve(ctx, &SolveRequest{Model: miniModel}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Solve(ctx, &SolveRequest{Model: miniModel, RelGap: 1e-3}); err != nil {
		t.Fatal(err)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Solves.Count != 2 {
		t.Fatalf("solver invoked %d times, want 2 (options are part of the key)", m.Solves.Count)
	}
}

func TestSingleflightConcurrentIdenticalSolves(t *testing.T) {
	_, _, c := newServerWith(t, Config{MaxConcurrent: 4})
	ctx := context.Background()
	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := c.Solve(ctx, &SolveRequest{Model: miniModel})
			if err == nil && res.Status != "optimal" {
				err = &json.UnsupportedValueError{}
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Solves.Count != 1 {
		t.Fatalf("solver invoked %d times for %d identical concurrent requests", m.Solves.Count, n)
	}
}

func TestFailedJobNon200(t *testing.T) {
	_, hs, c := newServerWith(t, Config{MaxConcurrent: 2})
	ctx := context.Background()
	id, err := c.Submit(ctx, &SolveRequest{Model: "var x nonsense;"})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		jr, err := c.Result(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if jr.Status == JobFailed {
			if jr.Error == "" {
				t.Fatalf("failed job has no error: %+v", jr)
			}
			break
		}
		if jr.Status == JobDone {
			t.Fatalf("unparseable model solved: %+v", jr)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %v", jr.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The raw HTTP status must be non-200.
	resp, err := http.Get(hs.URL + "/result?id=" + jsonInt(id))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("/result for failed job = %d, want %d", resp.StatusCode, http.StatusUnprocessableEntity)
	}
	// No retries for deterministic failures.
	jr, _ := c.Result(ctx, id)
	if jr.Attempts != 1 {
		t.Fatalf("parse error retried: attempts = %d", jr.Attempts)
	}
}

func jsonInt(v int64) string {
	b, _ := json.Marshal(v)
	return string(b)
}

func TestOversizedBodyRejected(t *testing.T) {
	_, hs, _ := newServerWith(t, Config{MaxConcurrent: 1})
	big := `{"model":"` + strings.Repeat("x", maxRequestBody+1) + `"}`
	resp, err := http.Post(hs.URL+"/solve", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want %d", resp.StatusCode, http.StatusRequestEntityTooLarge)
	}
}

func TestJobsListing(t *testing.T) {
	_, hs, c := newServerWith(t, Config{MaxConcurrent: 2})
	ctx := context.Background()
	id, err := c.Submit(ctx, &SolveRequest{Model: miniModel})
	if err != nil {
		t.Fatal(err)
	}
	waitForStatus(t, c, id, JobDone)

	resp, err := http.Get(hs.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/jobs = %d", resp.StatusCode)
	}
	var jobs []JobSummary
	if err := json.NewDecoder(resp.Body).Decode(&jobs); err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != id || jobs[0].Status != JobDone {
		t.Fatalf("jobs = %+v", jobs)
	}

	// Status filter.
	resp2, err := http.Get(hs.URL + "/jobs?status=failed")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var none []JobSummary
	if err := json.NewDecoder(resp2.Body).Decode(&none); err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Fatalf("failed filter returned %+v", none)
	}
	// Bad filter.
	resp3, err := http.Get(hs.URL + "/jobs?status=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus filter = %d", resp3.StatusCode)
	}
}

func waitForStatus(t *testing.T, c *Client, id int64, want JobStatus) *JobResult {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		jr, err := c.Result(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if jr.Status == want {
			return jr
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %d stuck in %v waiting for %v", id, jr.Status, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCrashRecoveryCompletesQueuedJob is the acceptance scenario: a server
// dies with work outstanding; a new server on the same -data-dir finishes
// it exactly once.
func TestCrashRecoveryCompletesQueuedJob(t *testing.T) {
	dir := t.TempDir()

	// Simulate the dying server's WAL: one job killed mid-run (running,
	// never finished) and one still queued behind it.
	store, err := jobstore.Open(dir, jobstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	runningReq, _ := json.Marshal(&SolveRequest{Model: "var x integer >= 0 <= 9; maximize o: x;"})
	if _, err := store.Enqueue(runningReq, 3); err != nil {
		t.Fatal(err)
	}
	midRun, _, err := store.Dequeue()
	if err != nil {
		t.Fatal(err)
	}
	if midRun.Status != jobstore.Running {
		t.Fatalf("mid-run status = %v", midRun.Status)
	}
	queuedReq, _ := json.Marshal(&SolveRequest{Model: miniModel})
	queued, err := store.Enqueue(queuedReq, 3)
	if err != nil {
		t.Fatal(err)
	}
	store.Close() // flushes; the "crash" is never marking midRun done

	// Restart: the new server must recover both jobs and finish them.
	s, hs, c := newServerWith(t, Config{MaxConcurrent: 2, DataDir: dir})
	if s.Recovered() != 1 {
		t.Fatalf("recovered = %d, want 1 (the mid-run job)", s.Recovered())
	}
	_ = hs
	done1 := waitForStatus(t, c, queued.ID, JobDone)
	if done1.Result == nil || done1.Result.Status != "optimal" {
		t.Fatalf("recovered queued job result: %+v", done1.Result)
	}
	done2 := waitForStatus(t, c, midRun.ID, JobDone)
	if done2.Result == nil || done2.Result.Status != "optimal" {
		t.Fatalf("recovered mid-run job result: %+v", done2.Result)
	}
	if done2.Result.Objective != 9 {
		t.Fatalf("mid-run objective = %v", done2.Result.Objective)
	}
	// Exactly once: the interrupted attempt counts, so the re-run is
	// attempt 2 and nothing is queued or running afterwards.
	if done2.Attempts != 2 {
		t.Fatalf("mid-run attempts = %d, want 2", done2.Attempts)
	}
	m, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.Jobs.QueueDepth != 0 || m.Jobs.Counts["running"] != 0 || m.Jobs.Counts["done"] != 2 {
		t.Fatalf("post-recovery jobs = %+v", m.Jobs)
	}
}

// TestDurableSubmitSurvivesRestart exercises the full server-side loop:
// submit against server A, kill A before it can run the job, boot server B
// on the same data dir, read the result from B.
func TestDurableSubmitSurvivesRestart(t *testing.T) {
	dir := t.TempDir()

	// Server A: zero workers would be ideal, but the pool size is also the
	// solver bound; instead give A a long job queue head start by closing
	// it immediately after submit. Close drains workers, so the job may
	// complete on A or stay queued — both are valid crash points; either
	// way B must serve the result.
	a, err := NewServerWith(Config{MaxConcurrent: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ha := httptest.NewServer(a.Handler())
	ca := NewClient(ha.URL)
	id, err := ca.Submit(context.Background(), &SolveRequest{Model: miniModel})
	if err != nil {
		t.Fatal(err)
	}
	ha.Close()
	a.Close()

	b, hb, cb := newServerWith(t, Config{MaxConcurrent: 1, DataDir: dir})
	_ = b
	_ = hb
	jr := waitForStatus(t, cb, id, JobDone)
	if jr.Result == nil || jr.Result.Status != "optimal" {
		t.Fatalf("result after restart: %+v", jr)
	}
}

func TestAsyncJobUsesCache(t *testing.T) {
	_, _, c := newServerWith(t, Config{MaxConcurrent: 2})
	ctx := context.Background()
	if _, err := c.Solve(ctx, &SolveRequest{Model: miniModel}); err != nil {
		t.Fatal(err)
	}
	id, err := c.Submit(ctx, &SolveRequest{Model: miniModelReformatted})
	if err != nil {
		t.Fatal(err)
	}
	waitForStatus(t, c, id, JobDone)
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Solves.Count != 1 {
		t.Fatalf("async path re-solved a cached model: count = %d", m.Solves.Count)
	}
}

func TestMetricsHistogram(t *testing.T) {
	_, _, c := newServerWith(t, Config{MaxConcurrent: 1})
	ctx := context.Background()
	if _, err := c.Solve(ctx, &SolveRequest{Model: miniModel}); err != nil {
		t.Fatal(err)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Solves.Count != 1 || m.Solves.LatencySumSeconds <= 0 {
		t.Fatalf("solve stats = %+v", m.Solves)
	}
	bs := m.Solves.LatencyBuckets
	if len(bs) == 0 || bs[len(bs)-1].LE != "+Inf" || bs[len(bs)-1].Count != 1 {
		t.Fatalf("buckets = %+v", bs)
	}
	// Cumulative counts are monotone.
	for i := 1; i < len(bs); i++ {
		if bs[i].Count < bs[i-1].Count {
			t.Fatalf("bucket counts not cumulative: %+v", bs)
		}
	}
}

// hardLadderModel writes a k-component HSLB instance whose per-component
// costs are near-identical (1000, 1000.001, 1000.002, ...): the makespan
// ties force branch-and-bound to enumerate a huge frontier of equivalent
// splits, so an unbounded solve pins a core for a very long time while the
// rounding rescue dive still yields a feasible deadline incumbent. seed
// shifts the coefficients so distinct seeds are distinct cache keys.
func hardLadderModel(k, seed int) string {
	var b strings.Builder
	b.WriteString("var T >= 0 <= 1e12;\n")
	names := make([]string, k)
	for i := 0; i < k; i++ {
		names[i] = fmt.Sprintf("n%d", i)
		fmt.Fprintf(&b, "var n%d integer >= 1 <= 1000000;\n", i)
	}
	b.WriteString("minimize obj: T;\n")
	for i := 0; i < k; i++ {
		fmt.Fprintf(&b, "subject to t%d: %.3f / n%d + %.6f <= T;\n",
			i, 1000.0+float64(seed)+float64(i)*0.001, i, 1e-6*float64(i))
	}
	fmt.Fprintf(&b, "subject to cap: %s <= 1000000;\n", strings.Join(names, " + "))
	return b.String()
}

// pathologicalModel is a model on which the solver crawls (minutes, not
// milliseconds). The server's SolveTimeout must stop it.
var pathologicalModel = hardLadderModel(120, 0)

func TestSolveTimeoutBoundsPathologicalModel(t *testing.T) {
	_, _, c := newServerWith(t, Config{MaxConcurrent: 2, SolveTimeout: 300 * time.Millisecond})
	ctx := context.Background()

	start := time.Now()
	out, err := c.Solve(ctx, &SolveRequest{Model: pathologicalModel})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("solve took %v, deadline did not bound it", elapsed)
	}
	if out.Status != "deadline" {
		t.Fatalf("status = %q, want deadline", out.Status)
	}
	if out.Error != "" {
		t.Fatalf("deadline is a degraded answer, not an error: %q", out.Error)
	}

	// Deadline results depend on the wall-clock budget, not just the
	// model, so they must not stick in the cache.
	if _, err := c.Solve(ctx, &SolveRequest{Model: pathologicalModel}); err != nil {
		t.Fatal(err)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Solves.Count != 2 {
		t.Fatalf("solver invoked %d times, want 2 (deadline results must not be cached)", m.Solves.Count)
	}
	if m.Cache.Size != 0 {
		t.Fatalf("cache size = %d, deadline result was cached", m.Cache.Size)
	}
}

func TestTimedOutJobEventuallyCompletes(t *testing.T) {
	// The near-tied coefficients make branch-and-bound grind (~250 nodes,
	// ≥100ms even on a loaded single-CPU box), so an 8ms per-attempt
	// timeout forces at least one retry. The solve must far exceed the
	// timeout plus scheduler jitter: with a marginally slow model the
	// worker's select can wake late with both the timer and the finished
	// solve ready, record the result on attempt 1, and flake. The
	// abandoned attempt's solver still warms the cache, so a later attempt
	// (the exponential backoff allows ~10s of them) finishes in
	// microseconds — inside the timeout. The job must converge to done,
	// never run unbounded.
	const slowModel = `
param N := 8000;
var T >= 0 <= 100000;
var n1 integer >= 1 <= 8000;
var n2 integer >= 1 <= 8000;
var n3 integer >= 1 <= 8000;
var n4 integer >= 1 <= 8000;
var n5 integer >= 1 <= 8000;
var n6 integer >= 1 <= 8000;
var n7 integer >= 1 <= 8000;
var n8 integer >= 1 <= 8000;
var n9 integer >= 1 <= 8000;
var n10 integer >= 1 <= 8000;
minimize total: T;
subject to t1: 11000.001 / n1 + 0.000001 <= T;
subject to t2: 11000.002 / n2 + 0.000002 <= T;
subject to t3: 11000.003 / n3 + 0.000003 <= T;
subject to t4: 11000.004 / n4 + 0.000004 <= T;
subject to t5: 11000.005 / n5 + 0.000005 <= T;
subject to t6: 11000.006 / n6 + 0.000006 <= T;
subject to t7: 11000.007 / n7 + 0.000007 <= T;
subject to t8: 11000.008 / n8 + 0.000008 <= T;
subject to t9: 11000.009 / n9 + 0.000009 <= T;
subject to t10: 11000.010 / n10 + 0.000010 <= T;
subject to cap: n1 + n2 + n3 + n4 + n5 + n6 + n7 + n8 + n9 + n10 <= N;
`
	_, _, c := newServerWith(t, Config{
		MaxConcurrent: 2,
		JobTimeout:    8 * time.Millisecond,
		MaxAttempts:   10,
		RetryBackoff:  20 * time.Millisecond,
	})
	id, err := c.Submit(context.Background(), &SolveRequest{Model: slowModel})
	if err != nil {
		t.Fatal(err)
	}
	jr := waitForStatus(t, c, id, JobDone)
	if jr.Attempts < 2 {
		t.Fatalf("attempts = %d, expected at least one timeout retry", jr.Attempts)
	}
	if jr.Result == nil || jr.Result.Status != "optimal" {
		t.Fatalf("result = %+v", jr.Result)
	}
}
