package neos

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// R-way result replication with anti-entropy repair. With Config.Replicate
// R > 1 every full-quality solve result is owned by the top R members of
// its key's rendezvous order over the fleet membership (this server's
// SelfURL plus its Peers) — exactly the router's failover order, so when a
// shard dies the router's next choice for a digest is precisely the shard
// holding its replica.
//
// Replication is layered, eventually consistent, and always validating:
//
//   - Write path: a solver fill (local or via a remote worker's
//     /work/complete) enqueues a best-effort push of the result to the
//     other R−1 owners — POST /replicate/{key} — through a bounded retry
//     queue. Peer-warm fills and replication ingests never push, so a
//     result cannot circulate forever.
//   - Ingest: POST /replicate/{key} re-validates the persistence bar
//     (peerWarmable: never "error"/"deadline"/degraded) before warming the
//     cache, which writes through to the result store. A replica is
//     trusted for bytes, not judgement.
//   - Anti-entropy: a background sweeper (kicked early on membership
//     changes) walks local persisted keys, re-derives each key's owners,
//     pushes results missing from sibling owners, and pulls keys this
//     server now owns but lacks — so a ring resize converges the replica
//     sets without any request traffic.
//
// Consistency contract: results are immutable for a given key (solves are
// deterministic), so replicas can only be missing, never conflicting;
// convergence is therefore set union under the validation bar.

// maxPushAttempts bounds retries of one replication push before the
// sweeper inherits the repair.
const maxPushAttempts = 8

// replQueueCap bounds the push retry queue; beyond it pushes are dropped
// (counted) and anti-entropy heals the gap.
const replQueueCap = 1024

// defaultAntiEntropyInterval is the sweeper cadence when
// Config.AntiEntropyInterval is unset.
const defaultAntiEntropyInterval = 60 * time.Second

// repPush is one queued replication push.
type repPush struct {
	key      string
	target   string
	payload  []byte
	attempts int
}

// replicator is the replication state hung off a Server.
type replicator struct {
	selfURL string
	factor  int
	http    *http.Client

	queue chan repPush
	kick  chan struct{} // wakes the sweeper early (membership change)

	pushes      atomic.Uint64 // successful pushes to replica owners
	pushErrors  atomic.Uint64 // failed push attempts (before any retry)
	pushRetries atomic.Uint64 // re-enqueued pushes
	dropped     atomic.Uint64 // pushes abandoned (queue full or attempts exhausted)
	ingested    atomic.Uint64 // replicas accepted on POST /replicate
	rejects     atomic.Uint64 // replicas refused (validation bar, bad key)
	sweeps      atomic.Uint64 // completed anti-entropy sweeps
	sweepPushed atomic.Uint64 // results pushed to under-replicated owners by sweeps
	sweepPulled atomic.Uint64 // results fetched for newly owned keys by sweeps
}

func newReplicator(cfg Config) *replicator {
	return &replicator{
		selfURL: strings.TrimRight(strings.TrimSpace(cfg.SelfURL), "/"),
		factor:  cfg.Replicate,
		// Replication is background traffic: a generous per-call timeout,
		// independent of the latency-critical PeerBudget.
		http:  &http.Client{Timeout: 5 * time.Second},
		queue: make(chan repPush, replQueueCap),
		kick:  make(chan struct{}, 1),
	}
}

// members returns the fleet membership (self + peers) as the replication
// scoring universe.
func (s *Server) members() []string {
	return append(s.peering.peerList(), s.repl.selfURL)
}

// replicaOwners returns the key's owner set: the top Replicate members of
// its rendezvous order. With fewer members than R, everyone owns everything.
func (s *Server) replicaOwners(key string) []string {
	order := rendezvousOrder(s.members(), key)
	if len(order) > s.repl.factor {
		order = order[:s.repl.factor]
	}
	return order
}

// replicateFill enqueues pushes of a fresh solver fill to the key's other
// replica owners. Only solver fills (local or remote-worker) call this —
// never peer warms or replication ingests, so pushes cannot loop.
func (s *Server) replicateFill(key string, resp *SolveResponse) {
	r := s.repl
	if r == nil || !peerWarmable(resp) {
		return
	}
	payload, err := json.Marshal(resp)
	if err != nil {
		return
	}
	for _, owner := range s.replicaOwners(key) {
		if owner == r.selfURL {
			continue
		}
		r.enqueue(repPush{key: key, target: owner, payload: payload, attempts: 0})
	}
}

// enqueue adds a push to the bounded retry queue, dropping (counted) when
// full — anti-entropy repairs dropped pushes on the next sweep.
func (r *replicator) enqueue(p repPush) {
	select {
	case r.queue <- p:
	default:
		r.dropped.Add(1)
	}
}

// push delivers one replica: POST {target}/replicate/{key}.
func (r *replicator) push(ctx context.Context, p repPush) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		p.target+"/replicate/"+p.key, bytes.NewReader(p.payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.http.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replicate: %s: status %d", p.target, resp.StatusCode)
	}
	return nil
}

// pusher drains the replication queue, retrying failed pushes with
// exponential backoff until maxPushAttempts, then leaving the repair to
// the sweeper.
func (s *Server) pusher() {
	defer s.wg.Done()
	r := s.repl
	for {
		var p repPush
		select {
		case <-s.quit:
			return
		case p = <-r.queue:
		}
		err := r.push(context.Background(), p)
		if err == nil {
			r.pushes.Add(1)
			continue
		}
		r.pushErrors.Add(1)
		p.attempts++
		if p.attempts >= maxPushAttempts {
			r.dropped.Add(1)
			s.logf("replication push of %.12s… to %s abandoned after %d attempts: %v",
				p.key, p.target, p.attempts, err)
			continue
		}
		// Back off before the retry; a dead owner must not spin the queue.
		backoff := 100 * time.Millisecond << uint(p.attempts-1)
		if backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
		select {
		case <-s.quit:
			return
		case <-time.After(backoff):
		}
		r.pushRetries.Add(1)
		r.enqueue(p)
	}
}

// sweeper runs anti-entropy at AntiEntropyInterval, and immediately when
// kicked by a membership change.
func (s *Server) sweeper() {
	defer s.wg.Done()
	interval := s.cfg.AntiEntropyInterval
	if interval == 0 {
		interval = defaultAntiEntropyInterval
	}
	if interval < 0 {
		// Sweeps disabled (tests drive sweepOnce directly); still honor
		// kicks so membership changes repair.
		for {
			select {
			case <-s.quit:
				return
			case <-s.repl.kick:
				s.sweepOnce()
			}
		}
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-tick.C:
			s.sweepOnce()
		case <-s.repl.kick:
			s.sweepOnce()
		}
	}
}

// kickSweep schedules an immediate anti-entropy sweep (member change).
func (s *Server) kickSweep() {
	if s.repl == nil {
		return
	}
	select {
	case s.repl.kick <- struct{}{}:
	default:
	}
}

// sweepOnce runs one full anti-entropy pass: push repair (results this
// server holds that a sibling owner lacks) then pull repair (keys this
// server now owns but never received). Every decision is re-derived from
// the current membership — no cached "confirmed" set — so a sweep after a
// resize converges the replica sets even if earlier sweeps ran against
// older rings.
func (s *Server) sweepOnce() {
	r := s.repl
	if r == nil || s.results == nil {
		return
	}
	ctx := context.Background()
	peers := s.peering.peerList()

	// Push side: for each local persisted key, make sure every sibling
	// owner holds it.
	for _, full := range s.results.KeysWithPrefix(solveKeyPrefix) {
		select {
		case <-s.quit:
			return
		default:
		}
		key := strings.TrimPrefix(full, solveKeyPrefix)
		for _, owner := range s.replicaOwners(key) {
			if owner == r.selfURL {
				continue
			}
			var history []HistoryEntry
			status, err := getJSON(ctx, r.http,
				fmt.Sprintf("%s/history/%s%s?limit=1", owner, solveKeyPrefix, key), &history)
			if err == nil && len(history) > 0 {
				continue // owner has it
			}
			if status != http.StatusNotFound {
				continue // owner unreachable or misbehaving; next sweep retries
			}
			data, _, err := s.results.HeadValue(full)
			if err != nil {
				continue // local corruption surfaces in fsck, never replicates
			}
			var resp SolveResponse
			if json.Unmarshal(data, &resp) != nil || !peerWarmable(&resp) {
				continue
			}
			if r.push(ctx, repPush{key: key, target: owner, payload: data}) == nil {
				r.sweepPushed.Add(1)
			}
		}
	}

	// Pull side: keys a sibling holds that this server now owns but lacks
	// (it joined the ring, or inherited the range in a resize).
	for _, peer := range peers {
		select {
		case <-s.quit:
			return
		default:
		}
		var keys []string
		if _, err := getJSON(ctx, r.http, peer+"/keys?prefix="+solveKeyPrefix, &keys); err != nil {
			continue
		}
		for _, full := range keys {
			key := strings.TrimPrefix(full, solveKeyPrefix)
			owned := false
			for _, owner := range s.replicaOwners(key) {
				if owner == r.selfURL {
					owned = true
					break
				}
			}
			if !owned {
				continue
			}
			if _, ok := s.results.Head(solveKeyPrefix + key); ok {
				continue // already replicated here
			}
			resp, _ := fetchPersisted(ctx, r.http, peer, key)
			if resp == nil {
				continue
			}
			// The cache write-through persists the pulled replica locally.
			s.cache.Put(key, resp)
			r.sweepPulled.Add(1)
		}
	}
	r.sweeps.Add(1)
}

// isHexKey reports whether key looks like a content-addressed solve
// fingerprint: 64 lowercase hex digits.
func isHexKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// handleReplicate ingests one pushed replica: POST /replicate/{key}. The
// persistence bar is re-validated — "error", "deadline" and degraded
// answers are refused with 422 whatever the sender claims — and an
// accepted replica warms the cache, persisting through the write-through
// backend.
func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	if s.repl == nil {
		http.Error(w, "replication not enabled", http.StatusNotFound)
		return
	}
	key := r.PathValue("key")
	if !isHexKey(key) {
		s.repl.rejects.Add(1)
		http.Error(w, "bad key: want a 64-hex solve fingerprint", http.StatusBadRequest)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
	var resp SolveResponse
	if err := json.NewDecoder(r.Body).Decode(&resp); err != nil {
		s.repl.rejects.Add(1)
		http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	if !peerWarmable(&resp) {
		s.repl.rejects.Add(1)
		http.Error(w, "replica fails the persistence bar (error/deadline/degraded)",
			http.StatusUnprocessableEntity)
		return
	}
	s.cache.Put(key, &resp)
	s.repl.ingested.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

// handleKeys lists persisted store keys: GET /keys?prefix=P. The
// anti-entropy pull side uses it to learn what a sibling holds.
func (s *Server) handleKeys(w http.ResponseWriter, r *http.Request) {
	if s.results == nil {
		http.Error(w, "no result store configured", http.StatusNotFound)
		return
	}
	prefix := r.URL.Query().Get("prefix")
	keys := s.results.KeysWithPrefix(prefix)
	if keys == nil {
		keys = []string{}
	}
	writeJSON(w, http.StatusOK, keys)
}

// handleAdminPeers is the shard-side membership surface:
//
//	GET  /admin/peers — current membership (self, replication factor, peers)
//	POST /admin/peers — replace the peer set: {"peers": ["url", ...]};
//	                    kicks an anti-entropy sweep so replica sets converge
//	                    to the new ring without waiting for the ticker.
func (s *Server) handleAdminPeers(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
	case http.MethodPost:
		var req struct {
			Peers []string `json:"peers"`
		}
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody)).Decode(&req); err != nil {
			http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
			return
		}
		s.peering.setPeers(req.Peers)
		s.logf("peer set replaced: %d peer(s)", len(s.peering.peerList()))
		s.kickSweep()
	default:
		http.Error(w, "GET or POST required", http.StatusMethodNotAllowed)
		return
	}
	out := struct {
		Self      string   `json:"self,omitempty"`
		Replicate int      `json:"replicate,omitempty"`
		Peers     []string `json:"peers"`
	}{Peers: s.peering.peerList()}
	if out.Peers == nil {
		out.Peers = []string{}
	}
	if s.repl != nil {
		out.Self = s.repl.selfURL
		out.Replicate = s.repl.factor
	}
	writeJSON(w, http.StatusOK, out)
}

// ReplicationMetrics is the /metrics section describing R-way replication.
type ReplicationMetrics struct {
	// Factor is the configured replication factor R.
	Factor int `json:"factor"`
	// Pushes counts replicas delivered to sibling owners on the write
	// path; PushErrors failed delivery attempts; PushRetries re-enqueued
	// deliveries; Dropped pushes abandoned to the sweeper (queue overflow
	// or attempts exhausted); QueueDepth the retry queue's current size.
	Pushes      uint64 `json:"pushes"`
	PushErrors  uint64 `json:"push_errors"`
	PushRetries uint64 `json:"push_retries"`
	Dropped     uint64 `json:"dropped"`
	QueueDepth  int    `json:"queue_depth"`
	// Ingested counts replicas accepted on POST /replicate; Rejects
	// replicas refused (validation bar, malformed key or payload).
	Ingested uint64 `json:"ingested"`
	Rejects  uint64 `json:"rejects"`
	// Sweeps counts completed anti-entropy passes; SweepPushed results
	// pushed to under-replicated owners; SweepPulled results fetched for
	// newly owned keys.
	Sweeps      uint64 `json:"sweeps"`
	SweepPushed uint64 `json:"sweep_pushed"`
	SweepPulled uint64 `json:"sweep_pulled"`
}

func (s *Server) replicationMetrics() *ReplicationMetrics {
	r := s.repl
	if r == nil {
		return nil
	}
	return &ReplicationMetrics{
		Factor:      r.factor,
		Pushes:      r.pushes.Load(),
		PushErrors:  r.pushErrors.Load(),
		PushRetries: r.pushRetries.Load(),
		Dropped:     r.dropped.Load(),
		QueueDepth:  len(r.queue),
		Ingested:    r.ingested.Load(),
		Rejects:     r.rejects.Load(),
		Sweeps:      r.sweeps.Load(),
		SweepPushed: r.sweepPushed.Load(),
		SweepPulled: r.sweepPulled.Load(),
	}
}
