package expr

import "math"

// Diff returns the symbolic partial derivative of e with respect to
// variable i. The result is simplified.
func Diff(e Expr, i int) Expr {
	return Simplify(diff(e, i))
}

func diff(e Expr, i int) Expr {
	switch t := e.(type) {
	case Const:
		return Const(0)
	case Var:
		if t.Index == i {
			return Const(1)
		}
		return Const(0)
	case Add:
		terms := make([]Expr, len(t.Terms))
		for k, term := range t.Terms {
			terms[k] = diff(term, i)
		}
		return Sum(terms...)
	case Mul:
		// Product rule over all factors.
		terms := make([]Expr, 0, len(t.Factors))
		for k := range t.Factors {
			factors := make([]Expr, len(t.Factors))
			copy(factors, t.Factors)
			factors[k] = diff(t.Factors[k], i)
			terms = append(terms, Prod(factors...))
		}
		return Sum(terms...)
	case Div:
		// (u/v)' = (u'v - uv')/v².
		num := Sub(Prod(diff(t.Num, i), t.Den), Prod(t.Num, diff(t.Den, i)))
		return Div{Num: num, Den: Pow{Base: t.Den, Exponent: Const(2)}}
	case Pow:
		if c, ok := t.Exponent.(Const); ok {
			// (u^c)' = c*u^(c-1)*u'.
			return Prod(Const(float64(c)),
				Pow{Base: t.Base, Exponent: Const(float64(c) - 1)},
				diff(t.Base, i))
		}
		// General case: u^v = exp(v*log u); (u^v)' = u^v*(v'*log u + v*u'/u).
		return Prod(t,
			Sum(Prod(diff(t.Exponent, i), Log{Arg: t.Base}),
				Div{Num: Prod(t.Exponent, diff(t.Base, i)), Den: t.Base}))
	case Log:
		return Div{Num: diff(t.Arg, i), Den: t.Arg}
	case Exp:
		return Prod(t, diff(t.Arg, i))
	case Neg:
		return Neg{Arg: diff(t.Arg, i)}
	default:
		panic("expr: unknown node in diff")
	}
}

// Simplify applies constant folding and algebraic identities (x+0, x*1,
// x*0, x^1, x^0, --x, 0/x) bottom-up. It never changes the value of the
// expression at points where it is defined.
func Simplify(e Expr) Expr {
	switch t := e.(type) {
	case Const, Var:
		return e
	case Add:
		terms := make([]Expr, 0, len(t.Terms))
		constSum := 0.0
		for _, term := range t.Terms {
			s := Simplify(term)
			if a, ok := s.(Add); ok {
				for _, inner := range a.Terms {
					if c, ok := inner.(Const); ok {
						constSum += float64(c)
					} else {
						terms = append(terms, inner)
					}
				}
				continue
			}
			if c, ok := s.(Const); ok {
				constSum += float64(c)
				continue
			}
			terms = append(terms, s)
		}
		if constSum != 0 || len(terms) == 0 {
			terms = append(terms, Const(constSum))
		}
		return Sum(terms...)
	case Mul:
		factors := make([]Expr, 0, len(t.Factors))
		constProd := 1.0
		for _, f := range t.Factors {
			s := Simplify(f)
			if m, ok := s.(Mul); ok {
				for _, inner := range m.Factors {
					if c, ok := inner.(Const); ok {
						constProd *= float64(c)
					} else {
						factors = append(factors, inner)
					}
				}
				continue
			}
			if c, ok := s.(Const); ok {
				constProd *= float64(c)
				continue
			}
			factors = append(factors, s)
		}
		if constProd == 0 {
			return Const(0)
		}
		if constProd != 1 || len(factors) == 0 {
			factors = append([]Expr{Const(constProd)}, factors...)
		}
		return Prod(factors...)
	case Div:
		num, den := Simplify(t.Num), Simplify(t.Den)
		if nc, ok := num.(Const); ok {
			if float64(nc) == 0 {
				return Const(0)
			}
			if dc, ok := den.(Const); ok {
				return Const(float64(nc) / float64(dc))
			}
		}
		if dc, ok := den.(Const); ok && float64(dc) == 1 {
			return num
		}
		return Div{Num: num, Den: den}
	case Pow:
		base, exp := Simplify(t.Base), Simplify(t.Exponent)
		if ec, ok := exp.(Const); ok {
			switch float64(ec) {
			case 0:
				return Const(1)
			case 1:
				return base
			}
			if bc, ok := base.(Const); ok {
				return Const(math.Pow(float64(bc), float64(ec)))
			}
		}
		return Pow{Base: base, Exponent: exp}
	case Log:
		arg := Simplify(t.Arg)
		if c, ok := arg.(Const); ok {
			return Const(math.Log(float64(c)))
		}
		return Log{Arg: arg}
	case Exp:
		arg := Simplify(t.Arg)
		if c, ok := arg.(Const); ok {
			return Const(math.Exp(float64(c)))
		}
		return Exp{Arg: arg}
	case Neg:
		arg := Simplify(t.Arg)
		if c, ok := arg.(Const); ok {
			return Const(-float64(c))
		}
		if n, ok := arg.(Neg); ok {
			return n.Arg
		}
		return Neg{Arg: arg}
	default:
		panic("expr: unknown node in Simplify")
	}
}
