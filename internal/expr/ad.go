package expr

import "math"

// Gradient computes f(x) and ∇f(x) using reverse-mode automatic
// differentiation in a single tree pass. grad must have length >= the number
// of variables; it is zeroed before accumulation.
func Gradient(e Expr, x []float64, grad []float64) float64 {
	for i := range grad {
		grad[i] = 0
	}
	return backprop(e, x, 1, grad)
}

// GradientAt is like Gradient but allocates the gradient slice, sized to
// len(x).
func GradientAt(e Expr, x []float64) (float64, []float64) {
	grad := make([]float64, len(x))
	v := Gradient(e, x, grad)
	return v, grad
}

// backprop evaluates e at x while pushing the adjoint (∂output/∂e = adj)
// down the tree, accumulating into grad. It returns the value of e.
func backprop(e Expr, x []float64, adj float64, grad []float64) float64 {
	switch t := e.(type) {
	case Const:
		return float64(t)
	case Var:
		grad[t.Index] += adj
		return x[t.Index]
	case Add:
		s := 0.0
		for _, term := range t.Terms {
			s += backprop(term, x, adj, grad)
		}
		return s
	case Mul:
		// Evaluate children first, then distribute the adjoint with the
		// product of the other factors.
		vals := make([]float64, len(t.Factors))
		for i, f := range t.Factors {
			vals[i] = evalNoGrad(f, x)
		}
		prod := 1.0
		for _, v := range vals {
			prod *= v
		}
		for i, f := range t.Factors {
			other := 1.0
			for j, v := range vals {
				if j != i {
					other *= v
				}
			}
			backprop(f, x, adj*other, grad)
		}
		return prod
	case Div:
		num := evalNoGrad(t.Num, x)
		den := evalNoGrad(t.Den, x)
		backprop(t.Num, x, adj/den, grad)
		backprop(t.Den, x, -adj*num/(den*den), grad)
		return num / den
	case Pow:
		base := evalNoGrad(t.Base, x)
		exp := evalNoGrad(t.Exponent, x)
		val := math.Pow(base, exp)
		// d/db b^e = e*b^(e-1); safe even at b=0 for e>1.
		backprop(t.Base, x, adj*exp*math.Pow(base, exp-1), grad)
		if _, isConst := t.Exponent.(Const); !isConst {
			// d/de b^e = b^e*log b; only meaningful for b>0.
			backprop(t.Exponent, x, adj*val*math.Log(base), grad)
		}
		return val
	case Log:
		a := evalNoGrad(t.Arg, x)
		backprop(t.Arg, x, adj/a, grad)
		return math.Log(a)
	case Exp:
		a := evalNoGrad(t.Arg, x)
		v := math.Exp(a)
		backprop(t.Arg, x, adj*v, grad)
		return v
	case Neg:
		return -backprop(t.Arg, x, -adj, grad)
	default:
		panic("expr: unknown node in backprop")
	}
}

func evalNoGrad(e Expr, x []float64) float64 { return e.Eval(x) }

// NumericGradient estimates ∇f(x) by central differences; used in tests to
// validate the AD implementation and available to solvers as a fallback.
func NumericGradient(e Expr, x []float64) []float64 {
	grad := make([]float64, len(x))
	xt := make([]float64, len(x))
	copy(xt, x)
	for i := range x {
		h := 1e-6 * math.Max(1, math.Abs(x[i]))
		xt[i] = x[i] + h
		fp := e.Eval(xt)
		xt[i] = x[i] - h
		fm := e.Eval(xt)
		xt[i] = x[i]
		grad[i] = (fp - fm) / (2 * h)
	}
	return grad
}
