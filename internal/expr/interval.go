package expr

import "math"

// Interval is a closed interval [Lo, Hi] on the extended real line.
type Interval struct {
	Lo, Hi float64
}

// Entire is the whole real line.
func Entire() Interval { return Interval{math.Inf(-1), math.Inf(1)} }

// Point returns the degenerate interval [v, v].
func Point(v float64) Interval { return Interval{v, v} }

// Contains reports whether v lies in the interval (inclusive).
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo && v <= iv.Hi }

// IsEmpty reports an inverted interval.
func (iv Interval) IsEmpty() bool { return iv.Lo > iv.Hi }

func (iv Interval) add(o Interval) Interval { return Interval{iv.Lo + o.Lo, iv.Hi + o.Hi} }
func (iv Interval) neg() Interval           { return Interval{-iv.Hi, -iv.Lo} }

func (iv Interval) mul(o Interval) Interval {
	cands := [4]float64{iv.Lo * o.Lo, iv.Lo * o.Hi, iv.Hi * o.Lo, iv.Hi * o.Hi}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, c := range cands {
		if math.IsNaN(c) {
			// 0·∞ products: treat as 0 (the finite endpoint was 0).
			c = 0
		}
		lo = math.Min(lo, c)
		hi = math.Max(hi, c)
	}
	return Interval{lo, hi}
}

func (iv Interval) div(o Interval) Interval {
	if o.Lo <= 0 && o.Hi >= 0 {
		return Entire() // denominator may vanish
	}
	inv := Interval{1 / o.Hi, 1 / o.Lo}
	return iv.mul(inv)
}

// powConst computes iv^c for a constant exponent, conservatively.
func (iv Interval) powConst(c float64) Interval {
	if c == 0 {
		return Point(1)
	}
	if c == 1 {
		return iv
	}
	pow := func(v float64) float64 { return math.Pow(v, c) }
	switch {
	case iv.Lo >= 0:
		// x^c monotone for x >= 0 (increasing for c>0, decreasing for c<0).
		a, b := pow(iv.Lo), pow(iv.Hi)
		return Interval{math.Min(a, b), math.Max(a, b)}
	case c == math.Trunc(c) && c > 0:
		// Integer exponent on a sign-crossing or negative interval.
		a, b := pow(iv.Lo), pow(iv.Hi)
		lo, hi := math.Min(a, b), math.Max(a, b)
		if int64(c)%2 == 0 && iv.Contains(0) {
			lo = 0
		}
		return Interval{lo, hi}
	default:
		// Fractional power of a (partly) negative interval: undefined
		// regions; give up conservatively.
		return Entire()
	}
}

// EvalInterval bounds the range of e over the box. box[i] bounds variable i.
// The result is a conservative enclosure: for every x in the box,
// e.Eval(x) ∈ EvalInterval(e, box) (up to floating-point rounding).
func EvalInterval(e Expr, box []Interval) Interval {
	switch t := e.(type) {
	case Const:
		return Point(float64(t))
	case Var:
		return box[t.Index]
	case Add:
		out := Point(0)
		for _, term := range t.Terms {
			out = out.add(EvalInterval(term, box))
		}
		return out
	case Mul:
		out := Point(1)
		for _, f := range t.Factors {
			out = out.mul(EvalInterval(f, box))
		}
		return out
	case Div:
		return EvalInterval(t.Num, box).div(EvalInterval(t.Den, box))
	case Pow:
		base := EvalInterval(t.Base, box)
		if c, ok := t.Exponent.(Const); ok {
			return base.powConst(float64(c))
		}
		exp := EvalInterval(t.Exponent, box)
		if base.Lo > 0 {
			// x^y = exp(y·log x); both monotone pieces, enclose via corners.
			cands := [4]float64{
				math.Pow(base.Lo, exp.Lo), math.Pow(base.Lo, exp.Hi),
				math.Pow(base.Hi, exp.Lo), math.Pow(base.Hi, exp.Hi),
			}
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, c := range cands {
				lo = math.Min(lo, c)
				hi = math.Max(hi, c)
			}
			return Interval{lo, hi}
		}
		return Entire()
	case Log:
		a := EvalInterval(t.Arg, box)
		if a.Hi <= 0 {
			return Entire() // undefined everywhere in the box
		}
		lo := math.Inf(-1)
		if a.Lo > 0 {
			lo = math.Log(a.Lo)
		}
		return Interval{lo, math.Log(a.Hi)}
	case Exp:
		a := EvalInterval(t.Arg, box)
		return Interval{math.Exp(a.Lo), math.Exp(a.Hi)}
	case Neg:
		return EvalInterval(t.Arg, box).neg()
	default:
		return Entire()
	}
}
