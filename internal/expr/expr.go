// Package expr implements scalar expression trees over indexed variables,
// with evaluation, symbolic differentiation, reverse-mode automatic
// differentiation, simplification, and affine-form extraction.
//
// The package plays the role AMPL's expression layer plays in the paper: the
// HSLB models of Table I and the performance functions of Table II are built
// as expr trees, and the NLP/MINLP solvers obtain exact gradients from them.
package expr

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Expr is a scalar expression over variables x[0..n).
type Expr interface {
	// Eval evaluates the expression at x.
	Eval(x []float64) float64
	// String renders the expression in an AMPL-like syntax.
	String() string
}

// Const is a constant expression.
type Const float64

// Var references variable x[Index]. Name is used only for printing.
type Var struct {
	Index int
	Name  string
}

// Add is a sum of terms.
type Add struct{ Terms []Expr }

// Mul is a product of factors.
type Mul struct{ Factors []Expr }

// Div is Num/Den.
type Div struct{ Num, Den Expr }

// Pow is Base^Exponent. The exponent may be any expression, but constant
// exponents get cheaper and more accurate derivative handling.
type Pow struct{ Base, Exponent Expr }

// Log is the natural logarithm.
type Log struct{ Arg Expr }

// Exp is e^Arg.
type Exp struct{ Arg Expr }

// Neg is -Arg.
type Neg struct{ Arg Expr }

// C returns a constant expression.
func C(v float64) Const { return Const(v) }

// X returns a variable expression with a default name.
func X(i int) Var { return Var{Index: i, Name: fmt.Sprintf("x%d", i)} }

// NamedVar returns a variable expression with an explicit name.
func NamedVar(i int, name string) Var { return Var{Index: i, Name: name} }

// Sum builds an Add node; it flattens nested sums.
func Sum(terms ...Expr) Expr {
	flat := make([]Expr, 0, len(terms))
	for _, t := range terms {
		if a, ok := t.(Add); ok {
			flat = append(flat, a.Terms...)
		} else {
			flat = append(flat, t)
		}
	}
	switch len(flat) {
	case 0:
		return Const(0)
	case 1:
		return flat[0]
	}
	return Add{Terms: flat}
}

// Prod builds a Mul node; it flattens nested products.
func Prod(factors ...Expr) Expr {
	flat := make([]Expr, 0, len(factors))
	for _, f := range factors {
		if m, ok := f.(Mul); ok {
			flat = append(flat, m.Factors...)
		} else {
			flat = append(flat, f)
		}
	}
	switch len(flat) {
	case 0:
		return Const(1)
	case 1:
		return flat[0]
	}
	return Mul{Factors: flat}
}

// Sub returns a - b.
func Sub(a, b Expr) Expr { return Sum(a, Neg{Arg: b}) }

// Scale returns c*e.
func Scale(c float64, e Expr) Expr { return Prod(Const(c), e) }

func (c Const) Eval(_ []float64) float64 { return float64(c) }
func (v Var) Eval(x []float64) float64   { return x[v.Index] }

func (a Add) Eval(x []float64) float64 {
	s := 0.0
	for _, t := range a.Terms {
		s += t.Eval(x)
	}
	return s
}

func (m Mul) Eval(x []float64) float64 {
	p := 1.0
	for _, f := range m.Factors {
		p *= f.Eval(x)
	}
	return p
}

func (d Div) Eval(x []float64) float64 { return d.Num.Eval(x) / d.Den.Eval(x) }

func (p Pow) Eval(x []float64) float64 {
	return math.Pow(p.Base.Eval(x), p.Exponent.Eval(x))
}

func (l Log) Eval(x []float64) float64 { return math.Log(l.Arg.Eval(x)) }
func (e Exp) Eval(x []float64) float64 { return math.Exp(e.Arg.Eval(x)) }
func (n Neg) Eval(x []float64) float64 { return -n.Arg.Eval(x) }

func (c Const) String() string {
	return strings.TrimSuffix(strings.TrimRight(fmt.Sprintf("%g", float64(c)), ""), "")
}

func (v Var) String() string {
	if v.Name != "" {
		return v.Name
	}
	return fmt.Sprintf("x%d", v.Index)
}

func (a Add) String() string {
	parts := make([]string, len(a.Terms))
	for i, t := range a.Terms {
		parts[i] = t.String()
	}
	return "(" + strings.Join(parts, " + ") + ")"
}

func (m Mul) String() string {
	parts := make([]string, len(m.Factors))
	for i, f := range m.Factors {
		parts[i] = f.String()
	}
	return "(" + strings.Join(parts, "*") + ")"
}

func (d Div) String() string { return "(" + d.Num.String() + "/" + d.Den.String() + ")" }
func (p Pow) String() string { return "(" + p.Base.String() + "^" + p.Exponent.String() + ")" }
func (l Log) String() string { return "log(" + l.Arg.String() + ")" }
func (e Exp) String() string { return "exp(" + e.Arg.String() + ")" }
func (n Neg) String() string { return "(-" + n.Arg.String() + ")" }

// Children returns the direct sub-expressions of e.
func Children(e Expr) []Expr {
	switch t := e.(type) {
	case Const, Var:
		return nil
	case Add:
		return t.Terms
	case Mul:
		return t.Factors
	case Div:
		return []Expr{t.Num, t.Den}
	case Pow:
		return []Expr{t.Base, t.Exponent}
	case Log:
		return []Expr{t.Arg}
	case Exp:
		return []Expr{t.Arg}
	case Neg:
		return []Expr{t.Arg}
	default:
		panic(fmt.Sprintf("expr: unknown node %T", e))
	}
}

// Vars returns the sorted list of variable indices referenced by e.
func Vars(e Expr) []int {
	set := map[int]bool{}
	var walk func(Expr)
	walk = func(e Expr) {
		if v, ok := e.(Var); ok {
			set[v.Index] = true
		}
		for _, c := range Children(e) {
			walk(c)
		}
	}
	walk(e)
	out := make([]int, 0, len(set))
	for i := range set {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// MaxVarIndex returns the largest variable index in e, or -1 when e is
// constant.
func MaxVarIndex(e Expr) int {
	m := -1
	var walk func(Expr)
	walk = func(e Expr) {
		if v, ok := e.(Var); ok && v.Index > m {
			m = v.Index
		}
		for _, c := range Children(e) {
			walk(c)
		}
	}
	walk(e)
	return m
}
