package expr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntervalBasics(t *testing.T) {
	box := []Interval{{1, 3}, {-2, 2}}
	cases := []struct {
		e      Expr
		lo, hi float64
	}{
		{Sum(X(0), X(1)), -1, 5},
		{Sub(X(0), X(1)), -1, 5},
		{Prod(X(0), X(1)), -6, 6},
		{Div{Num: C(6), Den: X(0)}, 2, 6},
		{Pow{Base: X(0), Exponent: C(2)}, 1, 9},
		{Pow{Base: X(1), Exponent: C(2)}, 0, 4}, // even power through zero
		{Neg{Arg: X(0)}, -3, -1},
		{Exp{Arg: X(1)}, math.Exp(-2), math.Exp(2)},
		{Log{Arg: X(0)}, 0, math.Log(3)},
	}
	for i, c := range cases {
		got := EvalInterval(c.e, box)
		if math.Abs(got.Lo-c.lo) > 1e-12 || math.Abs(got.Hi-c.hi) > 1e-12 {
			t.Errorf("case %d (%v): [%v,%v], want [%v,%v]", i, c.e, got.Lo, got.Hi, c.lo, c.hi)
		}
	}
}

func TestIntervalDivThroughZero(t *testing.T) {
	box := []Interval{{-1, 1}}
	got := EvalInterval(Div{Num: C(1), Den: X(0)}, box)
	if !math.IsInf(got.Lo, -1) || !math.IsInf(got.Hi, 1) {
		t.Fatalf("division through zero should be entire: %v", got)
	}
}

func TestIntervalLogNonPositive(t *testing.T) {
	box := []Interval{{-2, -1}}
	got := EvalInterval(Log{Arg: X(0)}, box)
	if !math.IsInf(got.Lo, -1) {
		t.Fatalf("log of negative box should be conservative: %v", got)
	}
}

func TestIntervalPerfModelBounds(t *testing.T) {
	// The Table II model over n ∈ [24, 768] with fixed positive params.
	// a/n + b·n^c + d with a=7697, b=1e-4, c=1.05, d=41.5.
	n := NamedVar(0, "n")
	e := Sum(
		Div{Num: C(7697), Den: n},
		Prod(C(1e-4), Pow{Base: n, Exponent: C(1.05)}),
		C(41.5),
	)
	box := []Interval{{24, 768}}
	iv := EvalInterval(e, box)
	for _, nv := range []float64{24, 100, 384, 768} {
		v := e.Eval([]float64{nv})
		if !iv.Contains(v) {
			t.Fatalf("enclosure [%v,%v] misses f(%v)=%v", iv.Lo, iv.Hi, nv, v)
		}
	}
}

// TestIntervalContainmentProperty: the fundamental theorem of interval
// arithmetic — the enclosure contains every sampled value.
func TestIntervalContainmentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := randomExpr(rng, 3, 4)
		box := make([]Interval, 3)
		for i := range box {
			lo := rng.Float64() * 2
			box[i] = Interval{lo, lo + rng.Float64()*3}
		}
		iv := EvalInterval(e, box)
		for k := 0; k < 20; k++ {
			x := make([]float64, 3)
			for i := range x {
				x[i] = box[i].Lo + rng.Float64()*(box[i].Hi-box[i].Lo)
			}
			v := e.Eval(x)
			if math.IsNaN(v) {
				continue
			}
			// Tolerate rounding at the endpoints.
			if v < iv.Lo-1e-9*math.Abs(iv.Lo)-1e-9 || v > iv.Hi+1e-9*math.Abs(iv.Hi)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalHelpers(t *testing.T) {
	if !Point(3).Contains(3) || Point(3).IsEmpty() {
		t.Error("Point misbehaves")
	}
	if (Interval{2, 1}).IsEmpty() == false {
		t.Error("inverted interval not empty")
	}
	ent := Entire()
	if !ent.Contains(1e300) || !ent.Contains(-1e300) {
		t.Error("Entire not entire")
	}
}
