package expr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approxEq(a, b, eps float64) bool {
	d := math.Abs(a - b)
	if d <= eps {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= eps*m
}

// perfModel builds the Table II performance function
// T(n) = a/n + b*n^c + d over x = [a, b, c, d, n].
func perfModel() Expr {
	a, b, c, d, n := X(0), X(1), X(2), X(3), X(4)
	return Sum(
		Div{Num: a, Den: n},
		Prod(b, Pow{Base: n, Exponent: c}),
		d,
	)
}

func TestEvalBasics(t *testing.T) {
	e := Sum(C(2), Prod(C(3), X(0)), Neg{Arg: X(1)})
	got := e.Eval([]float64{4, 5})
	if got != 2+12-5 {
		t.Fatalf("Eval = %v, want 9", got)
	}
}

func TestEvalPerfModel(t *testing.T) {
	e := perfModel()
	// T = 100/10 + 0.5*10^1 + 7 = 10 + 5 + 7 = 22.
	got := e.Eval([]float64{100, 0.5, 1, 7, 10})
	if !approxEq(got, 22, 1e-12) {
		t.Fatalf("Eval = %v, want 22", got)
	}
}

func TestEvalDivPowLogExp(t *testing.T) {
	x := []float64{2, 8}
	if got := (Div{Num: X(1), Den: X(0)}).Eval(x); got != 4 {
		t.Errorf("Div = %v", got)
	}
	if got := (Pow{Base: X(0), Exponent: C(3)}).Eval(x); got != 8 {
		t.Errorf("Pow = %v", got)
	}
	if got := (Log{Arg: X(1)}).Eval(x); !approxEq(got, math.Log(8), 1e-12) {
		t.Errorf("Log = %v", got)
	}
	if got := (Exp{Arg: X(0)}).Eval(x); !approxEq(got, math.E*math.E, 1e-12) {
		t.Errorf("Exp = %v", got)
	}
}

func TestSumProdFlatten(t *testing.T) {
	e := Sum(Sum(X(0), X(1)), X(2))
	if a, ok := e.(Add); !ok || len(a.Terms) != 3 {
		t.Fatalf("Sum did not flatten: %v", e)
	}
	p := Prod(Prod(X(0), X(1)), X(2))
	if m, ok := p.(Mul); !ok || len(m.Factors) != 3 {
		t.Fatalf("Prod did not flatten: %v", p)
	}
}

func TestSumEmptyAndSingle(t *testing.T) {
	if got := Sum().Eval(nil); got != 0 {
		t.Errorf("empty Sum = %v", got)
	}
	if got := Prod().Eval(nil); got != 1 {
		t.Errorf("empty Prod = %v", got)
	}
	if _, ok := Sum(X(0)).(Var); !ok {
		t.Error("single-term Sum should unwrap")
	}
}

func TestVarsAndMaxIndex(t *testing.T) {
	e := perfModel()
	got := Vars(e)
	want := []int{0, 1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("Vars = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", got, want)
		}
	}
	if MaxVarIndex(e) != 4 {
		t.Fatalf("MaxVarIndex = %d", MaxVarIndex(e))
	}
	if MaxVarIndex(C(1)) != -1 {
		t.Fatal("MaxVarIndex of const should be -1")
	}
}

func TestDiffPolynomial(t *testing.T) {
	// f = 3x² + 2x + 1 → f' = 6x + 2.
	x0 := X(0)
	f := Sum(Scale(3, Pow{Base: x0, Exponent: C(2)}), Scale(2, x0), C(1))
	df := Diff(f, 0)
	for _, xv := range []float64{-2, 0, 1, 3.5} {
		want := 6*xv + 2
		if got := df.Eval([]float64{xv}); !approxEq(got, want, 1e-12) {
			t.Fatalf("df(%v) = %v, want %v", xv, got, want)
		}
	}
}

func TestDiffQuotientRule(t *testing.T) {
	// f = x0/x1 → ∂f/∂x1 = -x0/x1².
	f := Div{Num: X(0), Den: X(1)}
	df := Diff(f, 1)
	x := []float64{6, 2}
	if got := df.Eval(x); !approxEq(got, -1.5, 1e-12) {
		t.Fatalf("df = %v, want -1.5", got)
	}
}

func TestDiffVariableExponent(t *testing.T) {
	// f = n^c; ∂f/∂c = n^c * log n.
	f := Pow{Base: X(0), Exponent: X(1)}
	df := Diff(f, 1)
	x := []float64{3, 2}
	want := math.Pow(3, 2) * math.Log(3)
	if got := df.Eval(x); !approxEq(got, want, 1e-12) {
		t.Fatalf("df = %v, want %v", got, want)
	}
}

func TestDiffLogExp(t *testing.T) {
	x := []float64{2.5}
	dlog := Diff(Log{Arg: X(0)}, 0)
	if got := dlog.Eval(x); !approxEq(got, 1/2.5, 1e-12) {
		t.Errorf("dlog = %v", got)
	}
	dexp := Diff(Exp{Arg: Scale(2, X(0))}, 0)
	if got := dexp.Eval(x); !approxEq(got, 2*math.Exp(5), 1e-12) {
		t.Errorf("dexp = %v", got)
	}
}

func TestSimplifyIdentities(t *testing.T) {
	cases := []struct {
		in   Expr
		want float64
		at   []float64
	}{
		{Sum(X(0), C(0)), 3, []float64{3}},
		{Prod(X(0), C(1)), 3, []float64{3}},
		{Prod(X(0), C(0)), 0, []float64{3}},
		{Pow{Base: X(0), Exponent: C(0)}, 1, []float64{3}},
		{Pow{Base: X(0), Exponent: C(1)}, 3, []float64{3}},
		{Neg{Arg: Neg{Arg: X(0)}}, 3, []float64{3}},
		{Div{Num: C(0), Den: X(0)}, 0, []float64{3}},
	}
	for i, c := range cases {
		s := Simplify(c.in)
		if got := s.Eval(c.at); !approxEq(got, c.want, 1e-12) {
			t.Errorf("case %d: Simplify(%v) evals to %v, want %v", i, c.in, got, c.want)
		}
	}
	// x*0 must fold to the constant 0 node.
	if _, ok := Simplify(Prod(X(0), C(0))).(Const); !ok {
		t.Error("x*0 did not fold to Const")
	}
}

func TestSimplifyPreservesValueProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := randomExpr(rng, 3, 4)
		x := []float64{1 + rng.Float64()*3, 1 + rng.Float64()*3, 1 + rng.Float64()*3}
		v1 := e.Eval(x)
		v2 := Simplify(e).Eval(x)
		if math.IsNaN(v1) || math.IsInf(v1, 0) {
			return true // undefined point; nothing to check
		}
		return approxEq(v1, v2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// randomExpr builds a random expression over nv variables, positive-safe
// (log/exp arguments kept to variables so x>0 keeps everything defined).
func randomExpr(rng *rand.Rand, nv, depth int) Expr {
	if depth == 0 || rng.Float64() < 0.3 {
		if rng.Float64() < 0.5 {
			return X(rng.Intn(nv))
		}
		return C(float64(rng.Intn(9)) - 4)
	}
	switch rng.Intn(6) {
	case 0:
		return Sum(randomExpr(rng, nv, depth-1), randomExpr(rng, nv, depth-1))
	case 1:
		return Prod(randomExpr(rng, nv, depth-1), randomExpr(rng, nv, depth-1))
	case 2:
		return Div{Num: randomExpr(rng, nv, depth-1), Den: Sum(X(rng.Intn(nv)), C(1))}
	case 3:
		return Pow{Base: Sum(X(rng.Intn(nv)), C(1)), Exponent: C(float64(1 + rng.Intn(3)))}
	case 4:
		return Log{Arg: Sum(X(rng.Intn(nv)), C(1))}
	default:
		return Neg{Arg: randomExpr(rng, nv, depth-1)}
	}
}

func TestGradientMatchesNumericProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := randomExpr(rng, 3, 4)
		x := []float64{0.5 + rng.Float64()*2, 0.5 + rng.Float64()*2, 0.5 + rng.Float64()*2}
		v := e.Eval(x)
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
			return true
		}
		grad := make([]float64, 3)
		Gradient(e, x, grad)
		num := NumericGradient(e, x)
		for i := range grad {
			if math.Abs(grad[i]) > 1e6 {
				return true // numerically wild region; skip
			}
			if !approxEq(grad[i], num[i], 1e-4) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGradientMatchesSymbolicDiff(t *testing.T) {
	e := perfModel()
	x := []float64{27180, 0.001, 1.2, 45.6, 104}
	grad := make([]float64, 5)
	val := Gradient(e, x, grad)
	if !approxEq(val, e.Eval(x), 1e-12) {
		t.Fatalf("Gradient value %v != Eval %v", val, e.Eval(x))
	}
	for i := 0; i < 5; i++ {
		want := Diff(e, i).Eval(x)
		if !approxEq(grad[i], want, 1e-9) {
			t.Errorf("grad[%d] = %v, want %v", i, grad[i], want)
		}
	}
}

func TestAsAffineLinear(t *testing.T) {
	// 3 + 2x0 - 5x1 + x0 → const 3, coef {0:3, 1:-5}.
	e := Sum(C(3), Scale(2, X(0)), Scale(-5, X(1)), X(0))
	a, ok := AsAffine(e)
	if !ok {
		t.Fatal("expected affine")
	}
	if a.Constant != 3 || a.Coef[0] != 3 || a.Coef[1] != -5 {
		t.Fatalf("affine = %+v", a)
	}
}

func TestAsAffineDivByConst(t *testing.T) {
	e := Div{Num: Sum(X(0), C(4)), Den: C(2)}
	a, ok := AsAffine(e)
	if !ok || a.Constant != 2 || a.Coef[0] != 0.5 {
		t.Fatalf("affine = %+v ok=%v", a, ok)
	}
}

func TestAsAffineRejectsNonlinear(t *testing.T) {
	nonlinear := []Expr{
		Prod(X(0), X(1)),
		Div{Num: C(1), Den: X(0)},
		Pow{Base: X(0), Exponent: C(2)},
		Log{Arg: X(0)},
		Exp{Arg: X(0)},
		Pow{Base: X(0), Exponent: X(1)},
	}
	for i, e := range nonlinear {
		if _, ok := AsAffine(e); ok {
			t.Errorf("case %d: %v wrongly classified as affine", i, e)
		}
	}
}

func TestAffineEvalMatchesExpr(t *testing.T) {
	e := Sum(C(3), Scale(2, X(0)), Scale(-5, X(1)))
	a, _ := AsAffine(e)
	x := []float64{1.5, -2}
	if !approxEq(a.Eval(x), e.Eval(x), 1e-12) {
		t.Fatal("affine eval mismatch")
	}
	back := a.ToExpr()
	if !approxEq(back.Eval(x), e.Eval(x), 1e-12) {
		t.Fatal("ToExpr eval mismatch")
	}
}

func TestLinearizeAtTangency(t *testing.T) {
	// For convex f, the linearization at x0 must touch f at x0 and
	// underestimate f elsewhere (the outer-approximation property).
	f := Sum(Div{Num: C(100), Den: X(0)}, C(5)) // convex for x>0
	x0 := []float64{10.0}
	lin := LinearizeAt(f, x0)
	if !approxEq(lin.Eval(x0), f.Eval(x0), 1e-10) {
		t.Fatalf("linearization not tangent: %v vs %v", lin.Eval(x0), f.Eval(x0))
	}
	for _, xv := range []float64{1, 5, 20, 100} {
		x := []float64{xv}
		if lin.Eval(x) > f.Eval(x)+1e-9 {
			t.Errorf("OA cut overestimates convex f at %v: %v > %v", xv, lin.Eval(x), f.Eval(x))
		}
	}
}

func TestStringRendering(t *testing.T) {
	e := Sum(Div{Num: NamedVar(0, "a"), Den: NamedVar(4, "n")}, NamedVar(3, "d"))
	s := e.String()
	if s == "" {
		t.Fatal("empty render")
	}
	for _, sub := range []string{"a", "n", "d", "/"} {
		if !containsStr(s, sub) {
			t.Errorf("render %q missing %q", s, sub)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
