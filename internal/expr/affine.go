package expr

// Affine represents c₀ + Σ Coef[i]·x[i]. Zero coefficients are omitted from
// the map.
type Affine struct {
	Constant float64
	Coef     map[int]float64
}

// NewAffine returns an affine form with no terms.
func NewAffine() *Affine { return &Affine{Coef: map[int]float64{}} }

func (a *Affine) add(b *Affine, scale float64) {
	a.Constant += scale * b.Constant
	for i, c := range b.Coef {
		a.Coef[i] += scale * c
		if a.Coef[i] == 0 {
			delete(a.Coef, i)
		}
	}
}

// isConstant reports whether a has no variable terms.
func (a *Affine) isConstant() bool { return len(a.Coef) == 0 }

// Eval evaluates the affine form at x.
func (a *Affine) Eval(x []float64) float64 {
	s := a.Constant
	for i, c := range a.Coef {
		s += c * x[i]
	}
	return s
}

// ToExpr converts the affine form back into an expression tree.
func (a *Affine) ToExpr() Expr {
	terms := []Expr{Const(a.Constant)}
	for i, c := range a.Coef {
		terms = append(terms, Scale(c, X(i)))
	}
	return Simplify(Sum(terms...))
}

// AsAffine attempts to express e as an affine function of its variables.
// It reports ok=false when e contains genuinely nonlinear structure
// (products of variables, variable exponents, log/exp/div by variables).
func AsAffine(e Expr) (*Affine, bool) {
	switch t := e.(type) {
	case Const:
		return &Affine{Constant: float64(t), Coef: map[int]float64{}}, true
	case Var:
		return &Affine{Coef: map[int]float64{t.Index: 1}}, true
	case Add:
		out := NewAffine()
		for _, term := range t.Terms {
			a, ok := AsAffine(term)
			if !ok {
				return nil, false
			}
			out.add(a, 1)
		}
		return out, true
	case Neg:
		a, ok := AsAffine(t.Arg)
		if !ok {
			return nil, false
		}
		out := NewAffine()
		out.add(a, -1)
		return out, true
	case Mul:
		// Affine only when at most one factor is non-constant.
		out := &Affine{Constant: 1, Coef: map[int]float64{}}
		for _, f := range t.Factors {
			a, ok := AsAffine(f)
			if !ok {
				return nil, false
			}
			if a.isConstant() {
				scaleAffine(out, a.Constant)
				continue
			}
			if !out.isConstant() {
				return nil, false // variable * variable
			}
			c := out.Constant
			out = NewAffine()
			out.add(a, c)
			out.Constant = a.Constant * c
		}
		return out, true
	case Div:
		num, ok := AsAffine(t.Num)
		if !ok {
			return nil, false
		}
		den, ok := AsAffine(t.Den)
		if !ok || !den.isConstant() || den.Constant == 0 {
			return nil, false
		}
		out := NewAffine()
		out.add(num, 1/den.Constant)
		return out, true
	case Pow:
		base, bok := AsAffine(t.Base)
		exp, eok := AsAffine(t.Exponent)
		if bok && base.isConstant() && eok && exp.isConstant() {
			v := e.Eval(nil)
			return &Affine{Constant: v, Coef: map[int]float64{}}, true
		}
		if eok && exp.isConstant() && exp.Constant == 1 && bok {
			return base, true
		}
		return nil, false
	case Log, Exp:
		if a, ok := AsAffine(Children(e)[0]); ok && a.isConstant() {
			return &Affine{Constant: e.Eval(nil), Coef: map[int]float64{}}, true
		}
		return nil, false
	default:
		return nil, false
	}
}

func scaleAffine(a *Affine, c float64) {
	a.Constant *= c
	if c == 0 {
		a.Coef = map[int]float64{}
		return
	}
	for i := range a.Coef {
		a.Coef[i] *= c
	}
}

// IsLinear reports whether e is affine in its variables.
func IsLinear(e Expr) bool {
	_, ok := AsAffine(e)
	return ok
}

// LinearizeAt returns the first-order Taylor expansion of e around x:
// f(x) + ∇f(x)·(y - x), as an affine form. This is the outer-approximation
// cut used by the LP/NLP branch-and-bound solver (paper §III-E, eq. 4).
func LinearizeAt(e Expr, x []float64) *Affine {
	grad := make([]float64, len(x))
	val := Gradient(e, x, grad)
	out := NewAffine()
	out.Constant = val
	for i, g := range grad {
		if g == 0 {
			continue
		}
		out.Coef[i] = g
		out.Constant -= g * x[i]
	}
	return out
}
