package manual

import (
	"testing"

	"hslb/internal/cesm"
)

func TestOptimize1Deg128(t *testing.T) {
	r, err := Optimize(cesm.Res1Deg, cesm.Layout1, 128, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := cesm.ValidateConfig(cesm.Config{
		Resolution: cesm.Res1Deg, Layout: cesm.Layout1, TotalNodes: 128, Alloc: r.Alloc,
	}); err != nil {
		t.Fatalf("expert produced invalid allocation %v: %v", r.Alloc, err)
	}
	// The paper's manual result at 1°/128 is 416 s; an expert emulation
	// should land in the same neighbourhood (within ~15%).
	if r.Timing.Total < 350 || r.Timing.Total > 480 {
		t.Fatalf("manual total %v s, expected ≈ 416 s ballpark (alloc %v)", r.Timing.Total, r.Alloc)
	}
	if r.Iterations < 1 || r.Iterations > 8 {
		t.Fatalf("iterations = %d", r.Iterations)
	}
	if len(r.History) < 1 {
		t.Fatal("no history recorded")
	}
}

func TestOptimizeImprovesOverFirstGuess(t *testing.T) {
	r, err := Optimize(cesm.Res1Deg, cesm.Layout1, 512, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	first := r.History[0].Total
	if r.Timing.Total > first*1.001 {
		t.Fatalf("best %v worse than first guess %v", r.Timing.Total, first)
	}
}

func TestOptimizeHighRes(t *testing.T) {
	r, err := Optimize(cesm.Res8thDeg, cesm.Layout1, 8192, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := cesm.ValidateConfig(cesm.Config{
		Resolution: cesm.Res8thDeg, Layout: cesm.Layout1, TotalNodes: 8192, Alloc: r.Alloc,
	}); err != nil {
		t.Fatalf("invalid allocation %v: %v", r.Alloc, err)
	}
	// Ocean must come from the hard-coded 1/8° set.
	found := false
	for _, v := range cesm.OceanSet(cesm.Res8thDeg) {
		if v == r.Alloc.Ocn {
			found = true
		}
	}
	if !found {
		t.Fatalf("expert chose ocean count %d outside the allowed set", r.Alloc.Ocn)
	}
	// Paper's manual total at 1/8°/8192 is 3785 s.
	if r.Timing.Total < 3000 || r.Timing.Total > 4600 {
		t.Fatalf("manual total %v s, expected ≈ 3800 s ballpark", r.Timing.Total)
	}
}

func TestUnsupportedLayout(t *testing.T) {
	if _, err := Optimize(cesm.Res1Deg, cesm.Layout3, 128, Options{}); err != ErrLayoutUnsupported {
		t.Fatalf("err = %v, want ErrLayoutUnsupported", err)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	r1, err := Optimize(cesm.Res1Deg, cesm.Layout1, 256, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Optimize(cesm.Res1Deg, cesm.Layout1, 256, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Alloc != r2.Alloc || r1.Timing.Total != r2.Timing.Total {
		t.Fatal("manual optimization not reproducible for a fixed seed")
	}
}
