// Package manual implements the baseline HSLB competes against: the manual
// ("human expert") load-balancing procedure described in §II and §IV — plot
// scaling curves from a handful of runs, pick core counts by eye, then
// iterate run-adjust-rerun until the layout looks balanced. The paper
// reports this takes five to ten iterations of building, queueing and
// waiting; this package automates the same heuristic so experiments can
// reproduce the "Manual" columns of Table III and the "human guess" series
// of Figure 3.
package manual

import (
	"errors"
	"math"

	"hslb/internal/cesm"
)

// Options configures the expert emulation.
type Options struct {
	// MaxIters bounds the tuning loop (default 8, the paper's "five to ten
	// iterations").
	MaxIters int
	// Seed drives run-to-run noise; each iteration is a separate queue
	// submission with its own noise draw.
	Seed int64
	// ImbalanceTol is the relative imbalance between the atmosphere branch
	// and the ocean branch the expert tolerates before shifting nodes
	// (default 0.04).
	ImbalanceTol float64
}

// Step is one iteration of the expert loop.
type Step struct {
	Alloc cesm.Allocation
	Total float64
}

// Result is the outcome of the manual procedure.
type Result struct {
	Alloc      cesm.Allocation
	Timing     *cesm.Timing
	Iterations int
	History    []Step
}

// ErrLayoutUnsupported is returned for layouts the expert heuristic does
// not know how to tune.
var ErrLayoutUnsupported = errors.New("manual: only layout 1 tuning is implemented (the paper's hybrid layout)")

// Optimize runs the expert procedure on the simulated machine.
func Optimize(res cesm.Resolution, layout cesm.Layout, total int, opt Options) (*Result, error) {
	if layout != cesm.Layout1 {
		return nil, ErrLayoutUnsupported
	}
	if opt.MaxIters == 0 {
		opt.MaxIters = 8
	}
	if opt.ImbalanceTol == 0 {
		opt.ImbalanceTol = 0.04
	}

	alloc := initialGuess(res, total)
	best := Result{Alloc: alloc}
	bestTotal := math.Inf(1)

	for iter := 0; iter < opt.MaxIters; iter++ {
		tm, err := cesm.Run(cesm.Config{
			Resolution: res, Layout: layout, TotalNodes: total,
			Alloc: alloc, Seed: opt.Seed + int64(iter)*7919,
		})
		if err != nil {
			return nil, err
		}
		best.History = append(best.History, Step{Alloc: alloc, Total: tm.Total})
		if tm.Total < bestTotal {
			bestTotal = tm.Total
			best.Alloc = alloc
			best.Timing = tm
			best.Iterations = iter + 1
		}
		next, changed := adjust(res, total, alloc, tm, opt.ImbalanceTol)
		if !changed {
			break
		}
		alloc = next
	}
	return &best, nil
}

// initialGuess is the expert's first layout: ocean gets roughly a fifth of
// the machine at an allowed count, the atmosphere the rest at a sweet spot,
// and ice/land split the atmosphere nodes 3:1 — the proportions visible in
// the paper's manual rows.
func initialGuess(res cesm.Resolution, total int) cesm.Allocation {
	ocn := snapOcean(res, total/5, total)
	atm := snapAtm(res, total-ocn, total-ocn)
	ice := atm * 3 / 4
	if ice < 1 {
		ice = 1
	}
	lnd := atm - ice
	if lnd < 1 {
		lnd = 1
		ice = atm - 1
	}
	return cesm.Allocation{Atm: atm, Ocn: ocn, Ice: ice, Lnd: lnd}
}

// adjust is one expert tuning move: balance the two concurrent branches
// (sequential atm+max(ice,lnd) vs ocean) by shifting ~10% of the smaller
// side's nodes, then rebalance ice vs land inside the shared pool.
func adjust(res cesm.Resolution, total int, a cesm.Allocation, tm *cesm.Timing, tol float64) (cesm.Allocation, bool) {
	seq := math.Max(tm.Comp[cesm.ICE], tm.Comp[cesm.LND]) + tm.Comp[cesm.ATM]
	ocn := tm.Comp[cesm.OCN]
	out := a
	changed := false

	imbalance := (seq - ocn) / math.Max(seq, ocn)
	shift := maxInt(total/20, 2)
	switch {
	case imbalance > tol:
		// Atmosphere branch is the bottleneck: take nodes from the ocean.
		newOcn := snapOcean(res, a.Ocn-shift, total)
		if newOcn >= a.Ocn {
			newOcn = oceanNeighbor(res, a.Ocn, total, -1)
		}
		if newOcn < a.Ocn && newOcn >= 2 {
			out.Ocn = newOcn
			out.Atm = snapAtm(res, total-newOcn, total-newOcn)
			changed = true
		}
	case imbalance < -tol:
		// Ocean is the bottleneck: give it more nodes. When the allowed set
		// is sparse (the hard-coded 1/8° counts), a proportional shift may
		// land between set values, so step to the next allowed count.
		newOcn := snapOcean(res, a.Ocn+shift, total)
		if newOcn <= a.Ocn {
			newOcn = oceanNeighbor(res, a.Ocn, total, +1)
		}
		if newOcn > a.Ocn && total-newOcn >= 2 {
			out.Ocn = newOcn
			out.Atm = snapAtm(res, total-newOcn, total-newOcn)
			changed = true
		}
	}
	// Keep ice+lnd inside the (possibly new) atmosphere share, preserving
	// their ratio.
	if out.Ice+out.Lnd > out.Atm || changed {
		ratio := float64(a.Ice) / float64(a.Ice+a.Lnd)
		out.Ice = maxInt(1, int(ratio*float64(out.Atm)))
		out.Lnd = maxInt(1, out.Atm-out.Ice)
		if out.Ice+out.Lnd > out.Atm {
			out.Ice = out.Atm - out.Lnd
		}
	}
	// Rebalance ice vs land if one is clearly slower.
	ti, tl := tm.Comp[cesm.ICE], tm.Comp[cesm.LND]
	if math.Abs(ti-tl)/math.Max(ti, tl) > tol {
		move := maxInt(out.Atm/20, 1)
		if ti > tl && out.Lnd > move {
			out.Ice += move
			out.Lnd -= move
			changed = true
		} else if tl > ti && out.Ice > move {
			out.Lnd += move
			out.Ice -= move
			changed = true
		}
	}
	if out == a {
		return a, false
	}
	return out, changed
}

// oceanNeighbor returns the next allowed ocean count in the given direction
// (+1 up, -1 down) that still leaves two nodes for the atmosphere, or the
// current value when none exists.
func oceanNeighbor(res cesm.Resolution, cur, total, dir int) int {
	set := cesm.OceanSet(res)
	best := cur
	for _, v := range set {
		if v > total-2 {
			continue
		}
		if dir > 0 && v > cur && (best == cur || v < best) {
			best = v
		}
		if dir < 0 && v < cur && (best == cur || v > best) {
			best = v
		}
	}
	return best
}

func snapOcean(res cesm.Resolution, want, total int) int {
	if want < 2 {
		want = 2
	}
	if max := cesm.OceanMaxNodes(res); want > max {
		want = max
	}
	set := cesm.OceanSet(res)
	// Pick the largest allowed count <= want that leaves room for atm.
	best := set[0]
	for _, v := range set {
		if v <= want && v > best && v <= total-2 {
			best = v
		}
	}
	return best
}

func snapAtm(res cesm.Resolution, want, cap int) int {
	if max := cesm.AtmMaxNodes(res); want > max {
		want = max
	}
	if want > cap {
		want = cap
	}
	if want < 2 {
		want = 2
	}
	if res == cesm.Res1Deg {
		return cesm.SnapToSweetSpot(want, cesm.AtmSet(res, want))
	}
	n := cesm.SnapToMultiple(want, cesm.AtmNodeMultiple)
	if n > cap {
		n -= cesm.AtmNodeMultiple
	}
	if n < 2 {
		n = 2
	}
	return n
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
