// Package mlice implements a machine-learning based chooser for the CICE
// sea-ice decomposition, reproducing the paper's companion work (reference
// [10], Balaprakash et al.): the ice component supports seven decomposition
// strategies whose quality varies unpredictably with node count, the default
// heuristic choice is frequently poor (it is why the ice scaling curve is
// the noisy one in Figure 2), and a learned model can pick a better
// decomposition from profiling data.
//
// The learner is a k-nearest-neighbour regressor over two features per
// (node count, strategy) pair: the log node count and the block-split
// evenness of that strategy's decomposition — a quantity computable from
// decomposition arithmetic alone, exactly the kind of grid-geometry feature
// the companion paper feeds its models. Training data comes from profiling
// runs (one timed ice run per strategy per training node count).
package mlice

import (
	"errors"
	"math"
	"sort"

	"hslb/internal/cesm"
)

// blockEvenness mirrors the CICE block arithmetic: strategy d assigns
// blocks of size proportional to 8·d, and performance depends on how evenly
// the resulting block count splits across nodes. 1 means a perfect split,
// 0 the worst misfit. This is decomposition geometry, not a timing oracle —
// it can be computed for any (nodes, strategy) without running the model.
func blockEvenness(nodes int, d cesm.IceDecomp) float64 {
	blocks := float64(nodes) / float64(int(d)*8)
	frac := blocks - math.Floor(blocks)
	return math.Abs(frac-0.5) * 2
}

// TrainingPoint is one profiled observation: the measured ice time for one
// strategy at one node count.
type TrainingPoint struct {
	Nodes    int
	Strategy cesm.IceDecomp
	Time     float64
}

// Profile gathers training data by running the ice component once per
// concrete strategy at each node count (7·len(nodeCounts) profiling runs).
func Profile(res cesm.Resolution, nodeCounts []int, seed int64) []TrainingPoint {
	var out []TrainingPoint
	for _, n := range nodeCounts {
		for d := cesm.DecompCartesian; d <= cesm.DecompRake; d++ {
			cfg := cesm.Config{Resolution: res, Seed: seed, IceDecomp: d}
			t := iceTime(cfg, n)
			out = append(out, TrainingPoint{Nodes: n, Strategy: d, Time: t})
		}
	}
	return out
}

// iceTime runs just the ice component of a benchmark configuration.
func iceTime(cfg cesm.Config, nodes int) float64 {
	full := cesm.Config{
		Resolution: cfg.Resolution, Layout: cesm.Layout1,
		TotalNodes: 4 * nodes,
		Alloc:      cesm.Allocation{Atm: 2 * nodes, Ocn: nodes, Ice: nodes, Lnd: nodes},
		Seed:       cfg.Seed, IceDecomp: cfg.IceDecomp,
	}
	tm, err := cesm.Run(full)
	if err != nil {
		return math.Inf(1)
	}
	return tm.Comp[cesm.ICE]
}

// Chooser predicts ice times per strategy and picks the best.
type Chooser struct {
	k      int
	points []TrainingPoint
}

// ErrNoData is returned when training data is empty.
var ErrNoData = errors.New("mlice: no training data")

// Train builds a k-NN chooser (k defaults to 3).
func Train(points []TrainingPoint, k int) (*Chooser, error) {
	if len(points) == 0 {
		return nil, ErrNoData
	}
	if k <= 0 {
		k = 3
	}
	cp := make([]TrainingPoint, len(points))
	copy(cp, points)
	return &Chooser{k: k, points: cp}, nil
}

// predict estimates the ice time of a strategy at a node count by averaging
// the k nearest training observations in (log nodes, evenness) space.
func (c *Chooser) predict(nodes int, d cesm.IceDecomp) float64 {
	fx := math.Log(float64(nodes))
	fy := blockEvenness(nodes, d)
	type scored struct {
		dist float64
		time float64
	}
	neigh := make([]scored, 0, len(c.points))
	for _, p := range c.points {
		px := math.Log(float64(p.Nodes))
		py := blockEvenness(p.Nodes, p.Strategy)
		// Strategy identity matters beyond geometry (strategy bias), so
		// penalize cross-strategy neighbours mildly.
		penalty := 0.0
		if p.Strategy != d {
			penalty = 0.05
		}
		dx := (px - fx) * 2 // node scale matters more than evenness
		dy := py - fy
		neigh = append(neigh, scored{dist: dx*dx + dy*dy + penalty, time: p.Time})
	}
	sort.Slice(neigh, func(i, j int) bool { return neigh[i].dist < neigh[j].dist })
	k := c.k
	if k > len(neigh) {
		k = len(neigh)
	}
	// Distance-weighted average.
	num, den := 0.0, 0.0
	for _, s := range neigh[:k] {
		w := 1 / (s.dist + 1e-6)
		num += w * s.time
		den += w
	}
	return num / den
}

// Choose returns the predicted-best strategy for a node count.
func (c *Chooser) Choose(nodes int) cesm.IceDecomp {
	best, bestT := cesm.DecompCartesian, math.Inf(1)
	for d := cesm.DecompCartesian; d <= cesm.DecompRake; d++ {
		if t := c.predict(nodes, d); t < bestT {
			best, bestT = d, t
		}
	}
	return best
}

// Evaluation compares chooser quality on held-out node counts.
type Evaluation struct {
	MLTime      float64 // mean ice time with the learned choice
	DefaultTime float64 // mean ice time with CICE's default choice
	OracleTime  float64 // mean ice time with the exhaustive best choice
}

// Evaluate measures the chooser against the default heuristic and the
// oracle on the given node counts (fresh noise seed = unseen runs).
func (c *Chooser) Evaluate(res cesm.Resolution, nodeCounts []int, seed int64) Evaluation {
	var ev Evaluation
	for _, n := range nodeCounts {
		ml := iceTime(cesm.Config{Resolution: res, Seed: seed, IceDecomp: c.Choose(n)}, n)
		def := iceTime(cesm.Config{Resolution: res, Seed: seed, IceDecomp: cesm.DecompDefault}, n)
		bestD, _ := cesm.BestIceDecomp(res, n)
		orc := iceTime(cesm.Config{Resolution: res, Seed: seed, IceDecomp: bestD}, n)
		ev.MLTime += ml
		ev.DefaultTime += def
		ev.OracleTime += orc
	}
	k := float64(len(nodeCounts))
	ev.MLTime /= k
	ev.DefaultTime /= k
	ev.OracleTime /= k
	return ev
}
