package mlice

import (
	"testing"

	"hslb/internal/cesm"
)

func trainCounts() []int {
	var out []int
	for n := 16; n <= 2048; n = n*5/4 + 1 {
		out = append(out, n)
	}
	return out
}

func TestProfileShape(t *testing.T) {
	pts := Profile(cesm.Res1Deg, []int{64, 128}, 1)
	if len(pts) != 2*cesm.NumIceDecomps {
		t.Fatalf("points = %d, want %d", len(pts), 2*cesm.NumIceDecomps)
	}
	for _, p := range pts {
		if p.Time <= 0 {
			t.Fatalf("bad time %+v", p)
		}
	}
}

func TestTrainRequiresData(t *testing.T) {
	if _, err := Train(nil, 3); err != ErrNoData {
		t.Fatalf("err = %v", err)
	}
}

func TestChooserBeatsDefault(t *testing.T) {
	pts := Profile(cesm.Res1Deg, trainCounts(), 42)
	ch, err := Train(pts, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Held-out counts not in the training set, fresh noise seed.
	test := []int{90, 170, 333, 700, 1500}
	ev := ch.Evaluate(cesm.Res1Deg, test, 1234)
	if ev.MLTime >= ev.DefaultTime {
		t.Fatalf("ML choice (%.2f s) not better than default (%.2f s); oracle %.2f s",
			ev.MLTime, ev.DefaultTime, ev.OracleTime)
	}
	// ML should capture most of the oracle's advantage.
	gapML := ev.MLTime - ev.OracleTime
	gapDef := ev.DefaultTime - ev.OracleTime
	if gapML > 0.7*gapDef {
		t.Fatalf("ML closes too little of the gap: ml-oracle %.3f vs default-oracle %.3f", gapML, gapDef)
	}
	t.Logf("ice mean time: ml %.2f s, default %.2f s, oracle %.2f s", ev.MLTime, ev.DefaultTime, ev.OracleTime)
}

func TestChooseReturnsConcreteStrategy(t *testing.T) {
	pts := Profile(cesm.Res1Deg, []int{64, 96, 128, 256}, 7)
	ch, err := Train(pts, 0) // default k
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{80, 100, 300} {
		d := ch.Choose(n)
		if d < cesm.DecompCartesian || d > cesm.DecompRake {
			t.Fatalf("Choose(%d) = %v", n, d)
		}
	}
}

func TestBlockEvennessRange(t *testing.T) {
	for n := 1; n < 500; n += 13 {
		for d := cesm.DecompCartesian; d <= cesm.DecompRake; d++ {
			e := blockEvenness(n, d)
			if e < 0 || e > 1 {
				t.Fatalf("evenness(%d,%v) = %v out of [0,1]", n, d, e)
			}
		}
	}
}
