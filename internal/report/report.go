// Package report renders experiment results as aligned ASCII tables, CSV,
// and ASCII line charts — the output layer the experiment harness uses to
// regenerate the paper's tables and figures on a terminal.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// AddSeparator appends a horizontal rule row.
func (t *Table) AddSeparator() {
	t.rows = append(t.rows, nil)
}

func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "n/a"
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	total := 1
	for _, w := range widths {
		total += w + 3
	}
	if t.Title != "" {
		fmt.Fprintln(w, t.Title)
	}
	rule := strings.Repeat("-", total)
	fmt.Fprintln(w, rule)
	fmt.Fprint(w, "|")
	for i, h := range t.Headers {
		fmt.Fprintf(w, " %-*s |", widths[i], h)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, rule)
	for _, row := range t.rows {
		if row == nil {
			fmt.Fprintln(w, rule)
			continue
		}
		fmt.Fprint(w, "|")
		for i := range t.Headers {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			fmt.Fprintf(w, " %*s |", widths[i], cell)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, rule)
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) {
	writeCSVRow(w, t.Headers)
	for _, row := range t.rows {
		if row == nil {
			continue
		}
		writeCSVRow(w, row)
	}
}

func writeCSVRow(w io.Writer, cells []string) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(w, ",")
		}
		if strings.ContainsAny(c, ",\"\n") {
			c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
		}
		fmt.Fprint(w, c)
	}
	fmt.Fprintln(w)
}

// Series is one named line for a Chart.
type Series struct {
	Name string
	X, Y []float64
}

// Chart renders multiple series as an ASCII scatter/line chart with
// logarithmic or linear axes.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot columns (default 72)
	Height int // plot rows (default 20)
	LogX   bool
	LogY   bool
	Series []Series
}

var chartMarks = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render draws the chart to w.
func (c *Chart) Render(w io.Writer) {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 20
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	tx := func(v float64) float64 {
		if c.LogX {
			return math.Log10(v)
		}
		return v
	}
	ty := func(v float64) float64 {
		if c.LogY {
			return math.Log10(v)
		}
		return v
	}
	for _, s := range c.Series {
		for i := range s.X {
			xmin = math.Min(xmin, tx(s.X[i]))
			xmax = math.Max(xmax, tx(s.X[i]))
			ymin = math.Min(ymin, ty(s.Y[i]))
			ymax = math.Max(ymax, ty(s.Y[i]))
		}
	}
	if math.IsInf(xmin, 1) {
		fmt.Fprintln(w, c.Title+" (no data)")
		return
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	// Later series are drawn first so that the first (usually primary)
	// series wins overlapping cells.
	for si := len(c.Series) - 1; si >= 0; si-- {
		s := c.Series[si]
		mark := chartMarks[si%len(chartMarks)]
		for i := range s.X {
			px := int(math.Round((tx(s.X[i]) - xmin) / (xmax - xmin) * float64(width-1)))
			py := int(math.Round((ty(s.Y[i]) - ymin) / (ymax - ymin) * float64(height-1)))
			row := height - 1 - py
			if row >= 0 && row < height && px >= 0 && px < width {
				grid[row][px] = mark
			}
		}
	}
	if c.Title != "" {
		fmt.Fprintln(w, c.Title)
	}
	yLo, yHi := ymin, ymax
	if c.LogY {
		yLo, yHi = math.Pow(10, ymin), math.Pow(10, ymax)
	}
	xLo, xHi := xmin, xmax
	if c.LogX {
		xLo, xHi = math.Pow(10, xmin), math.Pow(10, xmax)
	}
	fmt.Fprintf(w, "%s: %s .. %s\n", labelOr(c.YLabel, "y"), formatFloat(yLo), formatFloat(yHi))
	for _, row := range grid {
		fmt.Fprintf(w, "  |%s|\n", string(row))
	}
	fmt.Fprintf(w, "  %s\n", strings.Repeat("-", width+2))
	fmt.Fprintf(w, "%s: %s .. %s", labelOr(c.XLabel, "x"), formatFloat(xLo), formatFloat(xHi))
	if c.LogX || c.LogY {
		fmt.Fprint(w, "  (log scale)")
	}
	fmt.Fprintln(w)
	for si, s := range c.Series {
		fmt.Fprintf(w, "  %c %s\n", chartMarks[si%len(chartMarks)], s.Name)
	}
}

// String renders the chart to a string.
func (c *Chart) String() string {
	var b strings.Builder
	c.Render(&b)
	return b.String()
}

func labelOr(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
