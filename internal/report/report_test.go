package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Timings", "component", "nodes", "time")
	tb.AddRow("atm", 104, 306.952)
	tb.AddRow("ocn", 24, 362.669)
	tb.AddSeparator()
	tb.AddRow("total", "", 416.006)
	s := tb.String()
	for _, want := range []string{"Timings", "component", "atm", "307.0", "416.0"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	// All data lines must share the same width (alignment).
	width := len(lines[1])
	for _, l := range lines[1:] {
		if len(l) != width {
			t.Fatalf("misaligned line %q (%d vs %d)\n%s", l, len(l), width, s)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("x,y", 1.5)
	tb.AddSeparator()
	tb.AddRow("plain", 2)
	var b strings.Builder
	tb.CSV(&b)
	got := b.String()
	if !strings.HasPrefix(got, "a,b\n") {
		t.Fatalf("csv header wrong: %q", got)
	}
	if !strings.Contains(got, "\"x,y\"") {
		t.Fatalf("csv quoting wrong: %q", got)
	}
	if strings.Count(got, "\n") != 3 {
		t.Fatalf("csv should skip separators: %q", got)
	}
}

func TestChartRender(t *testing.T) {
	c := Chart{
		Title:  "scaling",
		XLabel: "nodes",
		YLabel: "seconds",
		LogX:   true,
		LogY:   true,
		Series: []Series{
			{Name: "atm", X: []float64{32, 128, 512, 1664}, Y: []float64{900, 260, 98, 62}},
			{Name: "ocn", X: []float64{24, 96, 384}, Y: []float64{363, 122, 62}},
		},
	}
	s := c.String()
	for _, want := range []string{"scaling", "nodes", "seconds", "* atm", "o ocn", "log scale"} {
		if !strings.Contains(s, want) {
			t.Errorf("chart missing %q:\n%s", want, s)
		}
	}
	if !strings.Contains(s, "*") {
		t.Error("no data marks plotted")
	}
}

func TestChartEmpty(t *testing.T) {
	c := Chart{Title: "empty"}
	if !strings.Contains(c.String(), "no data") {
		t.Error("empty chart should say so")
	}
}

func TestChartDegenerateRanges(t *testing.T) {
	c := Chart{Series: []Series{{Name: "pt", X: []float64{5}, Y: []float64{7}}}}
	s := c.String()
	if s == "" || !strings.Contains(s, "pt") {
		t.Fatalf("degenerate chart failed:\n%s", s)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		416.006: "416.0",
		5.777:   "5.777",
		24:      "24",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
