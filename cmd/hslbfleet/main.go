// Command hslbfleet is the end-to-end acceptance harness for the
// distributed solve fleet: it builds and launches one real hslbserver
// process (durable WAL, no in-process workers) and several real hslbworker
// processes, submits a batch of jobs, SIGKILLs one worker while leases are
// outstanding, and asserts that despite the crash
//
//   - every job reaches a terminal state (all done, none failed or lost),
//   - every result is the correct optimum for its model, and
//   - every remotely computed result warmed the server's solve cache —
//     replaying the batch through POST /solve costs zero solver invocations.
//
// The process exits non-zero on any violation, making it usable as a CI
// gate (`make fleet`).
//
// Usage:
//
//	hslbfleet -jobs 12 -workers 3 -timeout 120s
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"time"

	"hslb/internal/neos"
)

func main() {
	var (
		jobs     = flag.Int("jobs", 12, "jobs to submit")
		workers  = flag.Int("workers", 3, "hslbworker processes to launch")
		leaseTTL = flag.Duration("lease-ttl", time.Second, "server lease TTL")
		timeout  = flag.Duration("timeout", 120*time.Second, "overall scenario budget")
		keepLogs = flag.Bool("logs", false, "pass worker/server output through")
	)
	flag.Parse()

	if err := run(*jobs, *workers, *leaseTTL, *timeout, *keepLogs); err != nil {
		log.Fatalf("fleet scenario FAILED: %v", err)
	}
	fmt.Println("fleet scenario PASSED")
}

func run(jobs, workers int, leaseTTL, timeout time.Duration, keepLogs bool) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	bin, err := os.MkdirTemp("", "hslbfleet-bin-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(bin)
	data, err := os.MkdirTemp("", "hslbfleet-data-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(data)

	serverBin := filepath.Join(bin, "hslbserver")
	workerBin := filepath.Join(bin, "hslbworker")
	for target, pkg := range map[string]string{serverBin: "./cmd/hslbserver", workerBin: "./cmd/hslbworker"} {
		build := exec.CommandContext(ctx, "go", "build", "-o", target, pkg)
		build.Stdout, build.Stderr = os.Stdout, os.Stderr
		if err := build.Run(); err != nil {
			return fmt.Errorf("build %s: %w", pkg, err)
		}
	}

	addr, err := freeAddr()
	if err != nil {
		return err
	}
	url := "http://" + addr

	// 1 server, WAL on disk, queue left entirely to the remote fleet.
	server := exec.Command(serverBin,
		"-addr", addr,
		"-data-dir", data,
		"-async-workers=-1",
		"-lease-ttl", leaseTTL.String(),
		"-job-timeout", "-1s",
		"-max-attempts", "6",
	)
	if keepLogs {
		server.Stdout, server.Stderr = os.Stdout, os.Stderr
	}
	if err := server.Start(); err != nil {
		return fmt.Errorf("start server: %w", err)
	}
	defer reap(server, syscall.SIGTERM)

	client := neos.NewClient(url)
	if err := waitHealthy(ctx, client); err != nil {
		return err
	}

	startWorker := func(i int) (*exec.Cmd, error) {
		w := exec.Command(workerBin,
			"-server", url,
			"-id", fmt.Sprintf("fleet-%d", i),
			"-lease-ttl", leaseTTL.String(),
			"-drain-grace", "5s",
			"-backoff", "10ms",
			"-max-backoff", "250ms",
			"-v",
		)
		if keepLogs {
			w.Stdout, w.Stderr = os.Stdout, os.Stderr
		}
		if err := w.Start(); err != nil {
			return nil, fmt.Errorf("start worker %d: %w", i, err)
		}
		return w, nil
	}

	// Submit the batch: first a "poison" job slow enough (~230ms) that the
	// victim worker is provably mid-solve when killed, then unique fast
	// models with known optima. The poison job's objective is asserted via
	// replay consistency rather than a priori.
	poisonReq := &neos.SolveRequest{
		Model: "var n1 integer >= 1 <= 900; var n2 integer >= 1 <= 900;" +
			" var n3 integer >= 1 <= 900; var T >= 0 <= 10000;" +
			" subject to cap: n1 + n2 + n3 <= 900;" +
			" subject to t1: 5 + 1000/n1 <= T; subject to t2: 3 + 800/n2 <= T;" +
			" subject to t3: 4 + 600/n3 <= T; minimize total: T;",
		Algorithm: "nlpbb",
	}
	poisonID, err := client.Submit(ctx, poisonReq)
	if err != nil {
		return fmt.Errorf("submit poison: %w", err)
	}
	expect := map[int64]float64{}
	models := map[int64]string{}
	for i := 0; i < jobs; i++ {
		n := i + 2
		model := fmt.Sprintf("var x integer >= 1 <= %d; maximize total: x;", n)
		id, err := client.Submit(ctx, &neos.SolveRequest{Model: model})
		if err != nil {
			return fmt.Errorf("submit %d: %w", i, err)
		}
		expect[id] = float64(n)
		models[id] = model
	}

	// Fault injection, made deterministic: worker 0 starts alone, so the
	// first observed lease is provably its. The moment the server reports
	// one outstanding, SIGKILL — no drain, no release; only the lease TTL
	// and the server's reaper can rescue whatever it held.
	victim, err := startWorker(0)
	if err != nil {
		return err
	}
	defer reap(victim, syscall.SIGTERM)
	for {
		m, err := client.Metrics(ctx)
		if err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
		if m.Jobs.Leased > 0 {
			if err := victim.Process.Kill(); err != nil {
				return fmt.Errorf("kill worker 0: %w", err)
			}
			_ = victim.Wait()
			fmt.Printf("killed fleet-0 with %d lease(s) outstanding\n", m.Jobs.Leased)
			break
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("no kill window before timeout")
		case <-time.After(time.Millisecond):
		}
	}
	// Whatever the victim still held at the kill must be reclaimed by TTL
	// expiry, never lost. (It may have completed its lease in the instant
	// before the SIGKILL landed; then there is nothing to reclaim.)
	post, err := client.Metrics(ctx)
	if err != nil {
		return err
	}
	needReclaim := post.Jobs.Leased > 0

	// The rest of the fleet takes over.
	for i := 1; i < workers; i++ {
		w, err := startWorker(i)
		if err != nil {
			return err
		}
		defer reap(w, syscall.SIGTERM)
	}

	// Every job terminal, every result correct.
	for id, want := range expect {
		jr, err := waitDone(ctx, client, id)
		if err != nil {
			return fmt.Errorf("job %d: %w", id, err)
		}
		if jr.Status != neos.JobDone {
			return fmt.Errorf("job %d = %s (%s), want done", id, jr.Status, jr.Error)
		}
		if jr.Result == nil || jr.Result.Objective != want {
			return fmt.Errorf("job %d result = %+v, want objective %v", id, jr.Result, want)
		}
	}
	poison, err := waitDone(ctx, client, poisonID)
	if err != nil {
		return fmt.Errorf("poison job: %w", err)
	}
	if poison.Status != neos.JobDone || poison.Result == nil {
		return fmt.Errorf("poison job = %+v, want done with a result", poison)
	}

	// Remote results warmed the server cache: replaying the whole batch
	// through the sync path must not invoke the server's solver once.
	before, err := client.Metrics(ctx)
	if err != nil {
		return err
	}
	for id, model := range models {
		resp, err := client.Solve(ctx, &neos.SolveRequest{Model: model})
		if err != nil {
			return fmt.Errorf("replay solve job %d: %w", id, err)
		}
		if resp.Objective != expect[id] {
			return fmt.Errorf("replay job %d objective = %v, want %v", id, resp.Objective, expect[id])
		}
	}
	// The poison job replays from cache too, with the recorded result.
	preplay, err := client.Solve(ctx, poisonReq)
	if err != nil {
		return fmt.Errorf("replay poison: %w", err)
	}
	if preplay.Objective != poison.Result.Objective {
		return fmt.Errorf("poison replay objective = %v, recorded %v (conflicting execution?)",
			preplay.Objective, poison.Result.Objective)
	}
	after, err := client.Metrics(ctx)
	if err != nil {
		return err
	}
	if after.Solves.Count != before.Solves.Count {
		return fmt.Errorf("replay invoked the solver %d times; fleet results were not cached",
			after.Solves.Count-before.Solves.Count)
	}
	if needReclaim && after.Jobs.LeaseReclaims == 0 {
		return fmt.Errorf("killed worker held a lease but none was reclaimed")
	}
	fmt.Printf("%d jobs done, %d lease reclaim(s), %d stale reject(s), %d cache hit(s) on replay\n",
		jobs, after.Jobs.LeaseReclaims, after.Jobs.StaleRejects, after.Cache.Hits-before.Cache.Hits)
	return nil
}

func waitDone(ctx context.Context, c *neos.Client, id int64) (*neos.JobResult, error) {
	for {
		jr, err := c.Result(ctx, id)
		if err != nil {
			return nil, err
		}
		if jr.Status == neos.JobDone || jr.Status == neos.JobFailed {
			return jr, nil
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("not terminal before timeout (last status %s)", jr.Status)
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func waitHealthy(ctx context.Context, c *neos.Client) error {
	for {
		if _, err := c.Metrics(ctx); err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("server never became healthy")
		case <-time.After(50 * time.Millisecond):
		}
	}
}

func freeAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	defer l.Close()
	return l.Addr().String(), nil
}

// reap terminates a child gracefully, escalating to SIGKILL after 10s.
func reap(cmd *exec.Cmd, sig syscall.Signal) {
	if cmd.Process == nil {
		return
	}
	if cmd.ProcessState != nil { // already waited (e.g. the killed worker)
		return
	}
	_ = cmd.Process.Signal(sig)
	done := make(chan struct{})
	go func() { _, _ = cmd.Process.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		_ = cmd.Process.Kill()
		<-done
	}
}
