// Command hslbserver runs the NEOS-like optimization service: it accepts
// AMPL models over HTTP and solves them with the MINLP branch-and-bound
// solvers, reproducing the remote-solve deployment of the paper's automated
// pipeline (§V: "The AMPL code in HSLB is executed remotely ... on NEOS
// server hosted by ANL").
//
// Identical models (up to whitespace, comments and statement order) are
// served from a content-addressed solve cache, and with -data-dir the job
// queue is persisted to a write-ahead log: jobs submitted before a crash or
// restart are recovered and completed by the next process.
//
// Overload protection is on by default (-overload=false restores the
// unprotected server): admission control sheds excess /solve load with 429
// and a Retry-After hint, a circuit breaker short-circuits the solver after
// consecutive failures, and saturated requests fall back to cached or
// quick degraded answers before being shed. /health stays a pure liveness
// probe; /ready reports 503 while draining, saturated, or broken open.
//
// Usage:
//
//	hslbserver -addr :8080 -concurrency 4 -data-dir /var/lib/hslb
//
//	curl -s localhost:8080/health
//	curl -s -X POST localhost:8080/solve -d '{"model":"var x >= 0 <= 9; maximize o: x;"}'
//	curl -s localhost:8080/metrics
//
// SIGINT/SIGTERM triggers a graceful shutdown: listeners close, in-flight
// solves drain (bounded by -drain-timeout), queued jobs stay in the WAL.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hslb/internal/neos"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	concurrency := flag.Int("concurrency", 4, "maximum simultaneous solves")
	dataDir := flag.String("data-dir", "", "directory for the durable job WAL (empty = in-memory only)")
	cacheSize := flag.Int("cache-size", 256, "solve-cache capacity in entries")
	jobTimeout := flag.Duration("job-timeout", 60*time.Second, "per-attempt timeout for async jobs")
	solveTimeout := flag.Duration("solve-timeout", 120*time.Second, "wall-clock budget per solver invocation; on expiry the best incumbent is returned with status \"deadline\" (<0 disables)")
	solveWorkers := flag.Int("solve-workers", 1, "parallel tree-search workers per NLPBB solve (results are identical at any setting)")
	solveMode := flag.String("solve-mode", neos.SolveModeDeterministic, "\"deterministic\" runs the requested algorithm sequentially; \"race\" runs the portfolio racer (work-stealing NLPBB + OA + exhaustive search) and returns the same answers faster")
	pprofAddr := flag.String("pprof-addr", "", "listen address for net/http/pprof (e.g. localhost:6060; empty = profiling off)")
	maxAttempts := flag.Int("max-attempts", 3, "executions per async job before it is marked failed")
	jobTTL := flag.Duration("job-ttl", time.Hour, "retention of completed jobs")
	syncWAL := flag.Bool("fsync", false, "fsync the WAL on every job transition")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "how long shutdown waits for in-flight requests")
	overloadOn := flag.Bool("overload", true, "enable overload protection: admission control, circuit breaker, brownout ladder")
	maxQueue := flag.Int("max-queue", 0, "solve requests allowed to wait for a slot before shedding (0 = 4 × concurrency)")
	maxPendingJobs := flag.Int("max-pending-jobs", 0, "async jobs allowed in queued+running state before /submit sheds with 429 (0 = unlimited)")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive solver failures that trip the circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 10*time.Second, "how long a tripped breaker rests before half-open probes")
	breakerProbe := flag.Float64("breaker-probe", 0.25, "fraction of half-open requests allowed through as probes")
	degradedTimeout := flag.Duration("degraded-timeout", 250*time.Millisecond, "budget of the brownout rung's quick rounding solve (<0 disables the rung)")
	leaseTTL := flag.Duration("lease-ttl", 30*time.Second, "default lease duration granted to pull workers on /work/lease")
	asyncWorkers := flag.Int("async-workers", 0, "in-process async workers (0 = concurrency; <0 runs none, leaving /submit jobs to remote hslbworker nodes)")
	storeDir := flag.String("store-dir", "", "directory of the content-addressed result store (empty = disabled)")
	cachePersist := flag.Bool("cache-persist", false, "persist solve-cache fills to -store-dir and warm the cache from it at startup")
	storeHistory := flag.Int("store-history", 0, "commits of history retained per store key by GC (0 = unbounded)")
	peers := flag.String("peers", "", "comma-separated ring-sibling base URLs (own URL excluded) consulted for persisted results on solve-cache misses")
	peerBudget := flag.Duration("peer-budget", 150*time.Millisecond, "total budget for one solve's peer consult across all -peers")
	selfURL := flag.String("self-url", "", "this shard's own base URL as the fleet addresses it (required with -replicate > 1)")
	replicate := flag.Int("replicate", 0, "replication factor R: push every full-quality result to the top R owners of its key's rendezvous order over -self-url + -peers (0/1 = off; requires -self-url and -cache-persist)")
	antiEntropy := flag.Duration("anti-entropy", 0, "anti-entropy repair sweep cadence (0 = 60s default, <0 = membership-kicked sweeps only)")
	verbose := flag.Bool("v", false, "log replication, anti-entropy and peer-consult activity")
	flag.Parse()

	var peerURLs []string
	for _, u := range strings.Split(*peers, ",") {
		if u = strings.TrimSpace(u); u != "" {
			peerURLs = append(peerURLs, u)
		}
	}

	cfg := neos.Config{
		MaxConcurrent:       *concurrency,
		CacheSize:           *cacheSize,
		DataDir:             *dataDir,
		SyncWAL:             *syncWAL,
		JobTimeout:          *jobTimeout,
		MaxAttempts:         *maxAttempts,
		JobTTL:              *jobTTL,
		SolveTimeout:        *solveTimeout,
		SolveWorkers:        *solveWorkers,
		SolveMode:           *solveMode,
		MaxPendingJobs:      *maxPendingJobs,
		LeaseTTL:            *leaseTTL,
		AsyncWorkers:        *asyncWorkers,
		StoreDir:            *storeDir,
		CachePersist:        *cachePersist,
		StoreKeepHistory:    *storeHistory,
		Peers:               peerURLs,
		PeerBudget:          *peerBudget,
		SelfURL:             *selfURL,
		Replicate:           *replicate,
		AntiEntropyInterval: *antiEntropy,
		Overload: neos.OverloadConfig{
			Enabled:          *overloadOn,
			MaxQueue:         *maxQueue,
			BreakerThreshold: *breakerThreshold,
			BreakerCooldown:  *breakerCooldown,
			BreakerProbe:     *breakerProbe,
			DegradedTimeout:  *degradedTimeout,
		},
	}
	if *verbose {
		cfg.Logf = log.Printf
	}
	srv, err := neos.NewServerWith(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if n := srv.Recovered(); n > 0 {
		log.Printf("recovered %d in-flight job(s) from %s", n, *dataDir)
	}

	// Profiling stays off the service port and off by default: the standard
	// library's DefaultServeMux registration would expose /debug/pprof to
	// anyone who can reach the solver, so the handlers are mounted on their
	// own mux bound to -pprof-addr only when asked for.
	if *pprofAddr != "" {
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pmux); err != nil {
				log.Printf("pprof: %v", err)
			}
		}()
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	durability := "in-memory jobs"
	if *dataDir != "" {
		durability = "WAL in " + *dataDir
	}
	fmt.Printf("hslbserver listening on %s (max %d concurrent solves, %s mode, %s)\n",
		*addr, *concurrency, *solveMode, durability)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("signal received; draining for up to %v", *drainTimeout)
		srv.BeginDrain() // /ready turns 503 so load balancers stop sending work
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("http shutdown: %v", err)
		}
		if err := srv.Close(); err != nil {
			log.Printf("close: %v", err)
		}
		log.Println("shutdown complete")
	}
}
