// Command hslbserver runs the NEOS-like optimization service: it accepts
// AMPL models over HTTP and solves them with the MINLP branch-and-bound
// solvers, reproducing the remote-solve deployment of the paper's automated
// pipeline (§V: "The AMPL code in HSLB is executed remotely ... on NEOS
// server hosted by ANL").
//
// Usage:
//
//	hslbserver -addr :8080 -concurrency 4
//
//	curl -s localhost:8080/health
//	curl -s -X POST localhost:8080/solve -d '{"model":"var x >= 0 <= 9; maximize o: x;"}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"hslb/internal/neos"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	concurrency := flag.Int("concurrency", 4, "maximum simultaneous solves")
	flag.Parse()

	srv := neos.NewServer(*concurrency)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Printf("hslbserver listening on %s (max %d concurrent solves)\n", *addr, *concurrency)
	log.Fatal(httpSrv.ListenAndServe())
}
