// Command hslbworker is a pull-loop solver node for the distributed solve
// fleet: it leases async jobs from an hslbserver over the work protocol
// (POST /work/lease), solves them with the local MINLP pipeline, and
// reports results under the lease's fencing token (POST /work/complete).
//
// Crash safety comes from the lease, not the worker: a heartbeat goroutine
// renews the lease at a third of its TTL, and if the worker crashes, hangs,
// or partitions, the server's reaper requeues the job after the TTL — the
// dead worker's now-stale fencing token can never overwrite the retry. A
// worker that kept computing through an expired lease (a zombie) has its
// complete rejected with 409 unless the result is byte-identical to the
// recorded one, in which case it is absorbed as an idempotent no-op.
//
// Usage:
//
//	hslbworker -server http://localhost:8080 -id node-a -procs 2
//
// SIGINT/SIGTERM drains gracefully: each in-flight solve gets -drain-grace
// to finish (and is reported normally); past that its lease is released so
// another node picks the job up immediately. 429/503 responses from an
// overloaded or draining server are honored with exponential backoff
// floored at the server's Retry-After hint.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"hslb/internal/fleet"
	"hslb/internal/neos"
)

func main() {
	server := flag.String("server", "http://localhost:8080", "base URL of the hslbserver to pull work from")
	id := flag.String("id", "", "worker ID reported in leases (default: hostname-pid)")
	procs := flag.Int("procs", 1, "concurrent solves (each runs its own pull loop)")
	leaseTTL := flag.Duration("lease-ttl", 0, "lease duration to request (0 = server default)")
	solveWorkers := flag.Int("solve-workers", 1, "parallel tree-search workers per NLPBB solve")
	drainGrace := flag.Duration("drain-grace", 10*time.Second, "how long shutdown lets an in-flight solve finish before releasing its lease (<0 releases immediately)")
	baseBackoff := flag.Duration("backoff", 100*time.Millisecond, "initial idle/error poll backoff (doubles up to -max-backoff)")
	maxBackoff := flag.Duration("max-backoff", 5*time.Second, "backoff ceiling")
	verbose := flag.Bool("v", false, "log per-job progress")
	flag.Parse()

	if *id == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		*id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if *procs < 1 {
		*procs = 1
	}

	client := neos.NewClient(*server)
	logf := func(string, ...interface{}) {}
	if *verbose {
		logf = log.Printf
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	workers := make([]*fleet.Worker, *procs)
	var wg sync.WaitGroup
	for i := range workers {
		wid := *id
		if *procs > 1 {
			wid = fmt.Sprintf("%s-%d", *id, i)
		}
		w, err := fleet.New(client, fleet.Config{
			ID:           wid,
			LeaseTTL:     *leaseTTL,
			SolveWorkers: *solveWorkers,
			BaseBackoff:  *baseBackoff,
			MaxBackoff:   *maxBackoff,
			DrainGrace:   *drainGrace,
			Logf:         logf,
		})
		if err != nil {
			log.Fatal(err)
		}
		workers[i] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(ctx); err != nil {
				log.Printf("worker %s: %v", wid, err)
			}
		}()
	}
	fmt.Printf("hslbworker %s pulling from %s (%d loop(s))\n", *id, *server, *procs)

	<-ctx.Done()
	log.Printf("signal received; draining (grace %v)", *drainGrace)
	wg.Wait()
	var total fleet.Stats
	for _, w := range workers {
		st := w.Stats()
		total.Completed += st.Completed
		total.Duplicates += st.Duplicates
		total.Failed += st.Failed
		total.Released += st.Released
		total.LeasesLost += st.LeasesLost
	}
	log.Printf("drained: %d completed (%d duplicate), %d failed, %d released, %d leases lost",
		total.Completed, total.Duplicates, total.Failed, total.Released, total.LeasesLost)
}
