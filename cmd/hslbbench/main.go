// Command hslbbench times the two HSLB hot paths — the benchmark-gathering
// campaign and the NLP-based branch-and-bound solve — sequentially and with
// the worker pools enabled, verifies that both settings produce identical
// results, and writes the measurements to a JSON report.
//
// The gather stage simulates the paper's step 1 at 1°: a sampling plan of
// node counts with repeated runs, each attempt charged a configurable
// simulated machine wall-clock (-run-latency) so the worker pool has real
// latency to hide, exactly like a queue of batch jobs on Yellowstone. The
// solve stage runs the Table I MINLP with NLP-BB across a ladder of node
// budgets N = 128..2048.
//
// Usage:
//
//	hslbbench -workers 8 -o BENCH_parallel.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"reflect"
	"runtime"
	"strings"
	"time"

	"hslb/internal/bench"
	"hslb/internal/cesm"
	"hslb/internal/core"
	"hslb/internal/minlp"
	"hslb/internal/perf"
)

type stageResult struct {
	Stage             string  `json:"stage"`
	SequentialSeconds float64 `json:"sequential_seconds"`
	ParallelSeconds   float64 `json:"parallel_seconds"`
	Speedup           float64 `json:"speedup"`
}

type report struct {
	GitSHA     string        `json:"gitsha"`
	Date       string        `json:"date"`
	Workers    int           `json:"workers"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Stages     []stageResult `json:"stages"`
}

func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "hslbbench: "+format+"\n", args...)
	os.Exit(1)
}

// benchGather times the campaign at the given worker count.
func benchGather(workers int, latency time.Duration) (*bench.Data, float64) {
	c := bench.Campaign{
		Resolution: cesm.Res1Deg,
		Layout:     cesm.Layout1,
		NodeCounts: perf.SamplingPlan(128, 2048, 8),
		Repeats:    2,
		Seed:       7,
		Workers:    workers,
		RunLatency: latency,
	}
	start := time.Now()
	data, err := c.Run()
	if err != nil {
		fatalf("gather (workers=%d): %v", workers, err)
	}
	return data, time.Since(start).Seconds()
}

// benchSolve times the NLP-BB solve ladder at the given worker count and
// returns the chosen allocations for the identity check.
func benchSolve(workers int, models map[cesm.Component]perf.Model) ([]cesm.Allocation, float64) {
	opt := minlp.Options{Algorithm: minlp.NLPBB, BranchSOS: true, RelGap: 1e-4, Workers: workers}
	var allocs []cesm.Allocation
	start := time.Now()
	for n := 128; n <= 2048; n *= 2 {
		spec := core.Spec{
			Resolution: cesm.Res1Deg, Layout: cesm.Layout1, TotalNodes: n,
			ConstrainOcean: true, ConstrainAtm: true, Perf: models,
		}
		dec, err := core.SolveAllocation(spec, opt)
		if err != nil {
			fatalf("solve N=%d (workers=%d): %v", n, workers, err)
		}
		allocs = append(allocs, dec.Alloc)
	}
	return allocs, time.Since(start).Seconds()
}

func main() {
	defWorkers := runtime.GOMAXPROCS(0)
	if defWorkers < 4 {
		// Latency hiding in the gather stage needs workers, not cores; on
		// small machines a pool of 4 still demonstrates the overlap.
		defWorkers = 4
	}
	workers := flag.Int("workers", defWorkers, "parallel worker count for both stages")
	latency := flag.Duration("run-latency", 25*time.Millisecond, "simulated machine wall-clock per benchmark attempt")
	out := flag.String("o", "BENCH_parallel.json", "output report path")
	flag.Parse()
	if *workers < 2 {
		fatalf("-workers must be >= 2 to compare against sequential")
	}

	// Stage 1: gather. Identical Data is part of the contract, so the
	// timing comparison doubles as a determinism check.
	seqData, seqGather := benchGather(1, *latency)
	parData, parGather := benchGather(*workers, *latency)
	if !reflect.DeepEqual(seqData, parData) {
		fatalf("parallel gather changed the benchmark data (workers=%d)", *workers)
	}
	fmt.Printf("gather: sequential %.3fs, %d workers %.3fs (%.2fx)\n",
		seqGather, *workers, parGather, seqGather/parGather)

	// Stage 2: solve. Fit the gathered data once, then time the NLP-BB
	// ladder at both worker counts.
	fits, err := seqData.FitAll(perf.FitOptions{})
	if err != nil {
		fatalf("fit: %v", err)
	}
	models := bench.Models(fits)
	seqAllocs, seqSolve := benchSolve(1, models)
	parAllocs, parSolve := benchSolve(*workers, models)
	for i := range seqAllocs {
		if seqAllocs[i] != parAllocs[i] {
			fatalf("parallel solve changed the allocation at ladder rung %d: %v vs %v",
				i, seqAllocs[i], parAllocs[i])
		}
	}
	fmt.Printf("solve:  sequential %.3fs, %d workers %.3fs (%.2fx)\n",
		seqSolve, *workers, parSolve, seqSolve/parSolve)

	rep := report{
		GitSHA:     gitSHA(),
		Date:       time.Now().UTC().Format(time.RFC3339),
		Workers:    *workers,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Stages: []stageResult{
			{Stage: "gather", SequentialSeconds: seqGather, ParallelSeconds: parGather, Speedup: seqGather / parGather},
			{Stage: "solve", SequentialSeconds: seqSolve, ParallelSeconds: parSolve, Speedup: seqSolve / parSolve},
		},
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fatalf("write %s: %v", *out, err)
	}
	fmt.Printf("wrote %s\n", *out)
}
