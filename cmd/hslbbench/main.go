// Command hslbbench times the three HSLB hot paths — the benchmark-gathering
// campaign, the deterministic NLP-based branch-and-bound solve, and the
// racing-mode portfolio solve — sequentially and with the worker pools
// enabled, verifies the determinism contracts of each stage, and writes the
// measurements to a JSON report.
//
// The gather stage simulates the paper's step 1 at 1°: a sampling plan of
// node counts with repeated runs, each attempt charged a configurable
// simulated machine wall-clock (-run-latency) so the worker pool has real
// latency to hide, exactly like a queue of batch jobs on Yellowstone. The
// deterministic-solve stage runs the Table I MINLP with NLP-BB across a
// ladder of node budgets N = 128..2048; the parallel tree search replays the
// sequential visit order, so allocations must match exactly. The race stage
// first replays the fixed agreement ladder (Table I shapes with and without
// selection sets), asserting bit-identical X/Obj between sequential and
// racing mode, then times both modes on a larger free ladder where the race
// pays off; objectives of both modes are reported for that ladder.
//
// The -min-race-speedup gate (default 1.5) is enforced only when the host
// exposes at least 4 CPUs: race mode buys wall-clock through hardware
// parallelism, and on 1-CPU CI runners the contenders merely timeshare, so
// the gate is skipped there with the reason logged and recorded in the
// report. -stages selects a subset of stages; `make verify` uses
// "gather,race" so the gate runs on every change without paying for the
// long deterministic ladder.
//
// Usage:
//
//	hslbbench -workers 4 -o BENCH_parallel.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"reflect"
	"runtime"
	"strings"
	"time"

	"hslb/internal/bench"
	"hslb/internal/cesm"
	"hslb/internal/core"
	"hslb/internal/expr"
	"hslb/internal/minlp"
	"hslb/internal/model"
	"hslb/internal/perf"
)

type raceRung struct {
	Model             string  `json:"model"`
	SequentialSeconds float64 `json:"sequential_seconds"`
	RaceSeconds       float64 `json:"race_seconds"`
	SequentialObj     float64 `json:"sequential_obj"`
	RaceObj           float64 `json:"race_obj"`
	Speedup           float64 `json:"speedup"`
	Winner            string  `json:"winner"`
}

type raceTotals struct {
	Steals           int64          `json:"steals"`
	IncumbentUpdates int64          `json:"incumbent_updates"`
	Winners          map[string]int `json:"winners"`
}

type stageResult struct {
	Stage             string      `json:"stage"`
	ParallelMode      string      `json:"parallel_mode"`
	SequentialSeconds float64     `json:"sequential_seconds"`
	ParallelSeconds   float64     `json:"parallel_seconds"`
	Speedup           float64     `json:"speedup"`
	Identical         *bool       `json:"identical,omitempty"`
	AgreementLadder   *bool       `json:"agreement_ladder_identical,omitempty"`
	Rungs             []raceRung  `json:"rungs,omitempty"`
	Race              *raceTotals `json:"race,omitempty"`
}

type gateResult struct {
	MinRaceSpeedup float64 `json:"min_race_speedup"`
	Enforced       bool    `json:"enforced"`
	Passed         *bool   `json:"passed,omitempty"`
	SkipReason     string  `json:"skip_reason,omitempty"`
}

type report struct {
	GitSHA     string        `json:"gitsha"`
	Date       string        `json:"date"`
	Workers    int           `json:"workers"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	CPUs       int           `json:"cpus"`
	Stages     []stageResult `json:"stages"`
	Gate       *gateResult   `json:"race_speedup_gate,omitempty"`
}

func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "hslbbench: "+format+"\n", args...)
	os.Exit(1)
}

// benchGather times the campaign at the given worker count.
func benchGather(workers int, latency time.Duration) (*bench.Data, float64) {
	c := bench.Campaign{
		Resolution: cesm.Res1Deg,
		Layout:     cesm.Layout1,
		NodeCounts: perf.SamplingPlan(128, 2048, 8),
		Repeats:    2,
		Seed:       7,
		Workers:    workers,
		RunLatency: latency,
	}
	start := time.Now()
	data, err := c.Run()
	if err != nil {
		fatalf("gather (workers=%d): %v", workers, err)
	}
	return data, time.Since(start).Seconds()
}

// benchSolve times the deterministic NLP-BB ladder at the given worker
// count and returns the chosen allocations for the identity check.
func benchSolve(workers int, models map[cesm.Component]perf.Model) ([]cesm.Allocation, float64) {
	opt := minlp.Options{Algorithm: minlp.NLPBB, BranchSOS: true, RelGap: 1e-4, Workers: workers}
	var allocs []cesm.Allocation
	start := time.Now()
	for n := 128; n <= 2048; n *= 2 {
		spec := core.Spec{
			Resolution: cesm.Res1Deg, Layout: cesm.Layout1, TotalNodes: n,
			ConstrainOcean: true, ConstrainAtm: true, Perf: models,
		}
		dec, err := core.SolveAllocation(spec, opt)
		if err != nil {
			fatalf("solve N=%d (workers=%d): %v", n, workers, err)
		}
		allocs = append(allocs, dec.Alloc)
	}
	return allocs, time.Since(start).Seconds()
}

// tableIModel mirrors the Table I instance shape the way internal/core
// builds it (and the race agreement corpus in internal/minlp uses it):
// integer node counts per component, a continuous makespan T, capacity
// coupling, and optional hardware-legal selection sets on two components.
func tableIModel(total int, constrain bool) *model.Model {
	m := model.New()
	T := m.AddVar("T", model.Continuous, 0, 1e9)
	comps := []struct {
		a, d float64
	}{
		{3157.2, 12.4}, {8464.1, 4.9}, {1214.9, 41.6}, {5419.7, 8.2},
	}
	var caps []expr.Expr
	for i, c := range comps {
		n := m.AddVar(fmt.Sprintf("n%d", i), model.Integer, 1, float64(total))
		ti := expr.Sum(expr.Div{Num: expr.C(c.a), Den: n}, expr.C(c.d))
		m.AddConstraint(fmt.Sprintf("t%d", i), expr.Sub(ti, T), model.LE, 0)
		caps = append(caps, n)
		if constrain && i < 2 {
			m.AddSelectionSet(fmt.Sprintf("set%d", i), n,
				[]float64{2, 4, 8, 16, 24, 48, 96})
		}
	}
	m.AddConstraint("cap", expr.Sum(caps...), model.LE, float64(total))
	m.SetObjective(T, model.Minimize)
	return m
}

// raceAgreementLadder replays the contractual part of the race agreement
// corpus: on these models race mode must return the sequential answer
// bit-identically, regardless of scheduling.
func raceAgreementLadder(workers int) {
	ladder := []struct {
		name string
		m    *model.Model
		opt  minlp.Options
	}{
		{"tableI-128-free", tableIModel(128, false), minlp.Options{Algorithm: minlp.NLPBB}},
		{"tableI-128-sets", tableIModel(128, true), minlp.Options{Algorithm: minlp.NLPBB, BranchSOS: true}},
		{"tableI-96-sets-oa", tableIModel(96, true), minlp.Options{Algorithm: minlp.OuterApprox, BranchSOS: true}},
	}
	for _, tc := range ladder {
		seq, err := minlp.Solve(tc.m, tc.opt)
		if err != nil {
			fatalf("race agreement %s: sequential: %v", tc.name, err)
		}
		opt := tc.opt
		opt.Race = true
		opt.Workers = workers
		r, err := minlp.Solve(tc.m, opt)
		if err != nil {
			fatalf("race agreement %s: race: %v", tc.name, err)
		}
		if r.Obj != seq.Obj {
			fatalf("race agreement %s: obj %v != sequential %v (must be bit-identical)",
				tc.name, r.Obj, seq.Obj)
		}
		for i := range r.X {
			if r.X[i] != seq.X[i] {
				fatalf("race agreement %s: X[%d] = %v != sequential %v",
					tc.name, i, r.X[i], seq.X[i])
			}
		}
	}
}

// benchRace times sequential NLP-BB against racing mode on a free Table I
// ladder large enough for the portfolio to pay for itself. The two modes
// may prune differently on these deep trees, so both objectives are
// recorded instead of asserted identical; the bit-identity contract is
// checked by raceAgreementLadder on the corpus-family models.
func benchRace(workers int) ([]raceRung, *raceTotals, float64, float64) {
	totals := &raceTotals{Winners: map[string]int{}}
	var rungs []raceRung
	var seqTotal, raceTotal float64
	for _, total := range []int{1024, 2048, 4096} {
		opt := minlp.Options{Algorithm: minlp.NLPBB}
		start := time.Now()
		seq, err := minlp.Solve(tableIModel(total, false), opt)
		if err != nil {
			fatalf("race ladder total=%d: sequential: %v", total, err)
		}
		seqSec := time.Since(start).Seconds()

		ropt := opt
		ropt.Race = true
		ropt.Workers = workers
		start = time.Now()
		r, err := minlp.Solve(tableIModel(total, false), ropt)
		if err != nil {
			fatalf("race ladder total=%d: race: %v", total, err)
		}
		raceSec := time.Since(start).Seconds()
		if r.Race == nil {
			fatalf("race ladder total=%d: no race stats on result", total)
		}

		rungs = append(rungs, raceRung{
			Model:             fmt.Sprintf("tableI-%d-free", total),
			SequentialSeconds: seqSec,
			RaceSeconds:       raceSec,
			SequentialObj:     seq.Obj,
			RaceObj:           r.Obj,
			Speedup:           seqSec / raceSec,
			Winner:            r.Race.Winner,
		})
		totals.Steals += r.Race.Steals
		totals.IncumbentUpdates += r.Race.IncumbentUpdates
		totals.Winners[r.Race.Winner]++
		seqTotal += seqSec
		raceTotal += raceSec
	}
	return rungs, totals, seqTotal, raceTotal
}

func main() {
	defWorkers := runtime.GOMAXPROCS(0)
	if defWorkers < 4 {
		// Latency hiding in the gather stage needs workers, not cores; on
		// small machines a pool of 4 still demonstrates the overlap, and
		// race-mode Workers clamps to GOMAXPROCS, so the scheduler width is
		// raised to match below.
		defWorkers = 4
	}
	workers := flag.Int("workers", defWorkers, "parallel worker count for all stages")
	latency := flag.Duration("run-latency", 25*time.Millisecond, "simulated machine wall-clock per benchmark attempt")
	minRaceSpeedup := flag.Float64("min-race-speedup", 1.5, "minimum race-stage speedup required when the host has >= 4 CPUs (0 disables)")
	stagesFlag := flag.String("stages", "gather,det,race", "comma-separated stages to run (gather, det, race)")
	out := flag.String("o", "BENCH_parallel.json", "output report path")
	flag.Parse()
	if *workers < 2 {
		fatalf("-workers must be >= 2 to compare against sequential")
	}
	if runtime.GOMAXPROCS(0) < *workers {
		runtime.GOMAXPROCS(*workers)
	}
	stages := map[string]bool{}
	for _, s := range strings.Split(*stagesFlag, ",") {
		switch s = strings.TrimSpace(s); s {
		case "gather", "det", "race":
			stages[s] = true
		case "":
		default:
			fatalf("unknown stage %q (want gather, det, race)", s)
		}
	}
	if len(stages) == 0 {
		fatalf("-stages selected nothing")
	}

	yes := true
	var results []stageResult

	// Stage 1: gather. Identical Data is part of the contract, so the
	// timing comparison doubles as a determinism check. The solve stage
	// consumes the gathered data, so it is collected (untimed, parallel)
	// even when the gather stage itself is skipped.
	var seqData *bench.Data
	if stages["gather"] {
		var seqGather, parGather float64
		var parData *bench.Data
		seqData, seqGather = benchGather(1, *latency)
		parData, parGather = benchGather(*workers, *latency)
		if !reflect.DeepEqual(seqData, parData) {
			fatalf("parallel gather changed the benchmark data (workers=%d)", *workers)
		}
		fmt.Printf("gather:       sequential %.3fs, %d workers %.3fs (%.2fx)\n",
			seqGather, *workers, parGather, seqGather/parGather)
		results = append(results, stageResult{
			Stage: "gather", ParallelMode: fmt.Sprintf("pool workers=%d", *workers),
			SequentialSeconds: seqGather, ParallelSeconds: parGather,
			Speedup: seqGather / parGather, Identical: &yes})
	} else if stages["det"] {
		seqData, _ = benchGather(*workers, 0)
	}

	// Stage 2: deterministic solve. Fit the gathered data once, then time
	// the NLP-BB ladder at both worker counts; the prefetching tree search
	// replays the sequential visit order, so allocations must match.
	if stages["det"] {
		fits, err := seqData.FitAll(perf.FitOptions{})
		if err != nil {
			fatalf("fit: %v", err)
		}
		models := bench.Models(fits)
		seqAllocs, seqSolve := benchSolve(1, models)
		parAllocs, parSolve := benchSolve(*workers, models)
		for i := range seqAllocs {
			if seqAllocs[i] != parAllocs[i] {
				fatalf("parallel solve changed the allocation at ladder rung %d: %v vs %v",
					i, seqAllocs[i], parAllocs[i])
			}
		}
		fmt.Printf("solve (det):  sequential %.3fs, %d workers %.3fs (%.2fx)\n",
			seqSolve, *workers, parSolve, seqSolve/parSolve)
		results = append(results, stageResult{
			Stage: "solve-deterministic", ParallelMode: fmt.Sprintf("prefetch workers=%d", *workers),
			SequentialSeconds: seqSolve, ParallelSeconds: parSolve,
			Speedup: seqSolve / parSolve, Identical: &yes})
	}

	// Stage 3: racing mode. Bit-identity on the agreement ladder first,
	// then the timing ladder.
	var gate *gateResult
	if stages["race"] {
		raceAgreementLadder(*workers)
		rungs, totals, seqRace, parRace := benchRace(*workers)
		raceSpeedup := seqRace / parRace
		for _, r := range rungs {
			fmt.Printf("  %-18s seq %6.3fs obj %.6f | race %6.3fs obj %.6f (%.2fx, winner %s)\n",
				r.Model, r.SequentialSeconds, r.SequentialObj, r.RaceSeconds, r.RaceObj, r.Speedup, r.Winner)
		}
		fmt.Printf("solve (race): sequential %.3fs, race %d workers %.3fs (%.2fx), %d steals, %d incumbent updates\n",
			seqRace, *workers, parRace, raceSpeedup, totals.Steals, totals.IncumbentUpdates)
		results = append(results, stageResult{
			Stage: "solve-race", ParallelMode: fmt.Sprintf("race workers=%d", *workers),
			SequentialSeconds: seqRace, ParallelSeconds: parRace,
			Speedup: raceSpeedup, AgreementLadder: &yes, Rungs: rungs, Race: totals})

		// The speedup gate needs hardware parallelism to mean anything: on
		// a 1-CPU runner the contenders timeshare one core and any speedup
		// is algorithmic luck, so the gate is skipped with the reason
		// recorded.
		gate = &gateResult{MinRaceSpeedup: *minRaceSpeedup}
		switch {
		case *minRaceSpeedup <= 0:
			gate.SkipReason = "disabled by -min-race-speedup=0"
		case runtime.NumCPU() < 4:
			gate.SkipReason = fmt.Sprintf("NumCPU=%d < 4: no hardware parallelism to measure", runtime.NumCPU())
		default:
			gate.Enforced = true
			passed := raceSpeedup >= *minRaceSpeedup
			gate.Passed = &passed
		}
		if gate.SkipReason != "" {
			fmt.Printf("skipping race speedup gate: %s\n", gate.SkipReason)
		}
	}

	rep := report{
		GitSHA:     gitSHA(),
		Date:       time.Now().UTC().Format(time.RFC3339),
		Workers:    *workers,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUs:       runtime.NumCPU(),
		Stages:     results,
		Gate:       gate,
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fatalf("write %s: %v", *out, err)
	}
	fmt.Printf("wrote %s\n", *out)

	if gate != nil && gate.Enforced && !*gate.Passed {
		fatalf("race speedup below required %.2fx at %d workers (NumCPU=%d)",
			*minRaceSpeedup, *workers, runtime.NumCPU())
	}
}
