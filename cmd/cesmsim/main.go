// Command cesmsim drives the CESM performance simulator directly: run a
// single configuration, gather a benchmark campaign to CSV, or emit the
// pe-layout XML for an allocation.
//
// Usage:
//
//	cesmsim run -res 1deg -nodes 128 -atm 104 -ocn 24 -ice 80 -lnd 24
//	cesmsim gather -res 1deg -min 64 -max 2048 -points 6 -csv
//	cesmsim pelayout -nodes 128 -atm 104 -ocn 24 -ice 80 -lnd 24
package main

import (
	"flag"
	"fmt"
	"os"

	"hslb/internal/bench"
	"hslb/internal/cesm"
	"hslb/internal/perf"
	"hslb/internal/report"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = runCmd(os.Args[2:])
	case "gather":
		err = gatherCmd(os.Args[2:])
	case "pelayout":
		err = pelayoutCmd(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cesmsim:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: cesmsim <run|gather|pelayout> [flags]
  run       execute one simulated CESM configuration and print timings
  gather    run a benchmark campaign and print per-component samples
  pelayout  print the env_mach_pes-style XML for an allocation`)
}

func parseRes(s string) (cesm.Resolution, error) {
	switch s {
	case "1deg", "1":
		return cesm.Res1Deg, nil
	case "0.125deg", "1/8", "8th":
		return cesm.Res8thDeg, nil
	}
	return 0, fmt.Errorf("unknown resolution %q", s)
}

func allocFlags(fs *flag.FlagSet) (*int, *int, *int, *int) {
	atm := fs.Int("atm", 104, "atmosphere nodes")
	ocn := fs.Int("ocn", 24, "ocean nodes")
	ice := fs.Int("ice", 80, "sea-ice nodes")
	lnd := fs.Int("lnd", 24, "land nodes")
	return atm, ocn, ice, lnd
}

func runCmd(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	resFlag := fs.String("res", "1deg", "resolution")
	nodes := fs.Int("nodes", 128, "total nodes")
	layout := fs.Int("layout", 1, "layout 1-3")
	seed := fs.Int64("seed", 1, "noise seed")
	days := fs.Int("days", 5, "simulated days")
	atm, ocn, ice, lnd := allocFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := parseRes(*resFlag)
	if err != nil {
		return err
	}
	tm, err := cesm.Run(cesm.Config{
		Resolution: res,
		Layout:     cesm.Layout(*layout - 1),
		TotalNodes: *nodes,
		Alloc:      cesm.Allocation{Atm: *atm, Ocn: *ocn, Ice: *ice, Lnd: *lnd},
		Seed:       *seed,
		Days:       *days,
	})
	if err != nil {
		return err
	}
	t := report.NewTable(fmt.Sprintf("%s, layout %d, %d-day run on %d nodes", res, *layout, *days, *nodes),
		"component", "nodes", "time s")
	t.AddRow("atm", *atm, tm.Comp[cesm.ATM])
	t.AddRow("ocn", *ocn, tm.Comp[cesm.OCN])
	t.AddRow("ice", *ice, tm.Comp[cesm.ICE])
	t.AddRow("lnd", *lnd, tm.Comp[cesm.LND])
	t.AddRow("rtm", *lnd, tm.RTM)
	t.AddRow("cpl", *atm, tm.CPL)
	t.AddSeparator()
	t.AddRow("TOTAL", *nodes, tm.Total)
	t.Render(os.Stdout)
	return nil
}

func gatherCmd(args []string) error {
	fs := flag.NewFlagSet("gather", flag.ExitOnError)
	resFlag := fs.String("res", "1deg", "resolution")
	minN := fs.Int("min", 64, "smallest total node count")
	maxN := fs.Int("max", 2048, "largest total node count")
	points := fs.Int("points", 6, "number of node counts")
	repeats := fs.Int("repeats", 1, "runs per count")
	seed := fs.Int64("seed", 1, "noise seed")
	csv := fs.Bool("csv", false, "emit CSV")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := parseRes(*resFlag)
	if err != nil {
		return err
	}
	data, err := bench.Campaign{
		Resolution: res,
		Layout:     cesm.Layout1,
		NodeCounts: perf.SamplingPlan(*minN, *maxN, *points),
		Repeats:    *repeats,
		Seed:       *seed,
	}.Run()
	if err != nil {
		return err
	}
	t := report.NewTable(fmt.Sprintf("benchmark campaign: %s, %d runs", res, data.Runs),
		"component", "nodes", "time s")
	for _, c := range cesm.OptimizedComponents {
		for _, s := range data.Samples[c] {
			t.AddRow(c.String(), s.Nodes, s.Time)
		}
	}
	if *csv {
		t.CSV(os.Stdout)
	} else {
		t.Render(os.Stdout)
	}
	return nil
}

func pelayoutCmd(args []string) error {
	fs := flag.NewFlagSet("pelayout", flag.ExitOnError)
	nodes := fs.Int("nodes", 128, "total nodes")
	layout := fs.Int("layout", 1, "layout 1-3")
	atm, ocn, ice, lnd := allocFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := cesm.NewPELayout(cesm.Layout(*layout-1), *nodes,
		cesm.Allocation{Atm: *atm, Ocn: *ocn, Ice: *ice, Lnd: *lnd})
	if err != nil {
		return err
	}
	return p.WriteXML(os.Stdout)
}
