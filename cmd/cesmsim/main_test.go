package main

import "testing"

func TestParseRes(t *testing.T) {
	if _, err := parseRes("1deg"); err != nil {
		t.Error(err)
	}
	if _, err := parseRes("8th"); err != nil {
		t.Error(err)
	}
	if _, err := parseRes("nope"); err == nil {
		t.Error("bad resolution accepted")
	}
}

func TestSubcommandsRun(t *testing.T) {
	if err := runCmd([]string{"-res", "1deg", "-nodes", "128"}); err != nil {
		t.Errorf("run: %v", err)
	}
	if err := gatherCmd([]string{"-res", "1deg", "-min", "64", "-max", "512", "-points", "4", "-csv"}); err != nil {
		t.Errorf("gather: %v", err)
	}
	if err := pelayoutCmd([]string{"-nodes", "128"}); err != nil {
		t.Errorf("pelayout: %v", err)
	}
	// Invalid allocation must surface an error.
	if err := runCmd([]string{"-res", "1deg", "-nodes", "128", "-ocn", "100"}); err == nil {
		t.Error("invalid allocation accepted")
	}
}
