// Command experiments regenerates the paper's tables and figures on the
// simulated machine.
//
// Usage:
//
//	experiments -exp table3      # Table III, all six blocks
//	experiments -exp fig2        # Figure 2 scaling curves + fits
//	experiments -exp fig3        # Figure 3 human vs HSLB at 1/8°
//	experiments -exp fig4        # Figure 4 layout comparison
//	experiments -exp claims      # §III-E solver claims (40960 nodes, SOS)
//	experiments -exp objectives  # §III-D objective ablation
//	experiments -exp mlice       # ML ice-decomposition extension [10]
//	experiments -exp cost        # cost of tuning itself (§II motivation)
//	experiments -exp all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hslb/internal/cesm"
	"hslb/internal/core"
	"hslb/internal/experiments"
	"hslb/internal/report"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table3, fig2, fig3, fig4, claims, objectives, mlice, cost, all")
	seed := flag.Int64("seed", 1, "machine noise seed")
	flag.Parse()

	runners := map[string]func(int64) error{
		"table3":     runTable3,
		"fig2":       runFig2,
		"fig3":       runFig3,
		"fig4":       runFig4,
		"claims":     runClaims,
		"objectives": runObjectives,
		"mlice":      runMLIce,
		"cost":       runCost,
	}
	order := []string{"table3", "fig2", "fig3", "fig4", "claims", "objectives", "mlice", "cost"}

	if *exp == "all" {
		for _, name := range order {
			fmt.Printf("==== %s ====\n", name)
			if err := runners[name](*seed); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", name, ":", err)
				os.Exit(1)
			}
			fmt.Println()
		}
		return
	}
	fn, ok := runners[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if err := fn(*seed); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func runTable3(seed int64) error {
	results, err := experiments.RunTable3(seed)
	if err != nil {
		return err
	}
	experiments.Table3Report(results).Render(os.Stdout)
	return nil
}

func runFig2(seed int64) error {
	f, err := experiments.RunFig2(seed)
	if err != nil {
		return err
	}
	f.Chart().Render(os.Stdout)
	fmt.Println()
	f.Table(104).Render(os.Stdout)
	return nil
}

func runFig3(seed int64) error {
	pts, err := experiments.RunFig3(seed)
	if err != nil {
		return err
	}
	experiments.Fig3Table(pts).Render(os.Stdout)
	return nil
}

func runFig4(seed int64) error {
	pts, r2, err := experiments.RunFig4(seed)
	if err != nil {
		return err
	}
	experiments.Fig4Chart(pts).Render(os.Stdout)
	fmt.Printf("\nlayout-1 predicted-vs-experiment R² = %.4f (paper: 1.0)\n", r2)
	return nil
}

func runClaims(seed int64) error {
	scale, err := experiments.RunSolveAtScale(40960, seed)
	if err != nil {
		return err
	}
	fmt.Printf("40960-node MINLP: %s (%d B&B nodes), allocation %v\n",
		scale.Elapsed.Round(time.Millisecond), scale.Decision.Nodes, scale.Decision.Alloc)
	sos, err := experiments.RunSOSAblation(512, seed, 200000)
	if err != nil {
		return err
	}
	experiments.ClaimsTable(scale, sos).Render(os.Stdout)
	return nil
}

func runObjectives(seed int64) error {
	r, err := experiments.RunObjectiveAblation(128, seed)
	if err != nil {
		return err
	}
	t := report.NewTable("Objective ablation (§III-D) — composed layout-1 total",
		"objective", "total s", "allocation")
	for _, obj := range []core.Objective{core.MinMax, core.MaxMin, core.MinSum} {
		if total, ok := r.Totals[obj]; ok {
			t.AddRow(obj.String(), total, r.Allocs[obj].String())
		} else {
			t.AddRow(obj.String(), "n/a", "did not converge")
		}
	}
	t.Render(os.Stdout)
	return nil
}

func runCost(seed int64) error {
	r, err := experiments.RunTuningCost(cesm.Res8thDeg, 32768, seed)
	if err != nil {
		return err
	}
	experiments.TuningCostTable(r).Render(os.Stdout)
	return nil
}

func runMLIce(seed int64) error {
	r, err := experiments.RunMLIce(seed)
	if err != nil {
		return err
	}
	t := report.NewTable("ML ice-decomposition chooser (ref [10]) — mean ice time on held-out counts",
		"chooser", "mean ice time s")
	t.AddRow("CICE default", r.Eval.DefaultTime)
	t.AddRow("k-NN learned", r.Eval.MLTime)
	t.AddRow("oracle", r.Eval.OracleTime)
	t.Render(os.Stdout)
	return nil
}
