// Command hslbloadfleet is the acceptance gate for the sharded solve
// fleet: real hslbserver shard processes behind a real hslbrouter process.
// It measures three things end to end:
//
//   - Scaling: closed-loop goodput through the router over 1 shard versus
//     4 shards. On hosts with >= 4 CPUs the run fails unless 4 shards
//     deliver at least -min-speedup (default 3x) the single-shard goodput;
//     on smaller hosts the gate is skipped with the reason logged and
//     recorded in the report (the measurement still runs).
//   - Cache peering: shard A solves and persists a model; shard B — a ring
//     sibling that has never seen it — must answer the same model through
//     the router with ZERO local solver invocations, warmed from A's
//     persisted result.
//   - Failover: a closed loop runs through the router over 2 shards while
//     one shard is SIGKILLed with requests provably in flight. Every
//     request must reach exactly one terminal outcome (a response; no
//     transport errors, no hangs) and successes must continue after the
//     kill.
//
// The process exits non-zero on any violated gate and writes a JSON report
// (default BENCH_fleet.json), making it usable as a CI gate
// (`make load-fleet`).
//
// Usage:
//
//	hslbloadfleet -phase 2s -clients 8 -o BENCH_fleet.json
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"hslb/internal/neos"
	"hslb/internal/router"
)

func main() {
	var (
		phase      = flag.Duration("phase", 2*time.Second, "duration of each goodput measurement phase")
		clients    = flag.Int("clients", 8, "closed-loop clients per phase")
		minSpeedup = flag.Float64("min-speedup", 3.0, "fail unless 4-shard goodput >= this multiple of 1-shard goodput (gated only on >= 4 CPU hosts)")
		timeout    = flag.Duration("timeout", 300*time.Second, "overall scenario budget")
		out        = flag.String("o", "BENCH_fleet.json", "report path")
		keepLogs   = flag.Bool("logs", false, "pass shard/router output through")
	)
	flag.Parse()

	if err := run(*phase, *clients, *minSpeedup, *timeout, *out, *keepLogs); err != nil {
		log.Fatalf("load-fleet scenario FAILED: %v", err)
	}
	fmt.Println("load-fleet scenario PASSED")
}

// report is the JSON document written to -o.
type report struct {
	NumCPU     int     `json:"num_cpu"`
	GoVersion  string  `json:"go_version"`
	PhaseNs    int64   `json:"phase_ns"`
	Clients    int     `json:"clients"`
	MinSpeedup float64 `json:"min_speedup"`

	Scaling struct {
		OneShardGoodput  float64 `json:"one_shard_goodput_per_s"`
		FourShardGoodput float64 `json:"four_shard_goodput_per_s"`
		Speedup          float64 `json:"speedup"`
		Gate             string  `json:"gate"`
	} `json:"scaling"`

	PeerWarm struct {
		Hits              uint64 `json:"hits"`
		SolverInvocations uint64 `json:"solver_invocations"`
		Gate              string `json:"gate"`
	} `json:"peer_warm"`

	Failover struct {
		Requests        uint64 `json:"requests"`
		OK              uint64 `json:"ok"`
		Shed            uint64 `json:"shed"`
		Errors          uint64 `json:"errors"`
		OKAfterKill     uint64 `json:"ok_after_kill"`
		RouterFailovers uint64 `json:"router_failovers"`
		Gate            string `json:"gate"`
	} `json:"failover"`

	Replication struct {
		Corpus            int    `json:"corpus"`
		VictimDigests     int    `json:"victim_digests"`
		ReplicaIngests    uint64 `json:"replica_ingests"`
		SolvesBeforeKill  uint64 `json:"survivor_solves_before_kill"`
		SolvesAfterReplay uint64 `json:"survivor_solves_after_replay"`
		Gate              string `json:"gate"`
	} `json:"replication"`

	Resize struct {
		Requests       uint64 `json:"requests"`
		Errors         uint64 `json:"errors"`
		Added          int    `json:"added"`
		NewShardRouted uint64 `json:"new_shard_routed"`
		Gate           string `json:"gate"`
	} `json:"resize"`
}

// fleet is the running harness state: built binaries plus every child
// process started, so one deferred sweep reaps them all.
type fleet struct {
	ctx       context.Context
	serverBin string
	routerBin string
	keepLogs  bool

	mu   sync.Mutex
	kids []*exec.Cmd
}

func run(phase time.Duration, clients int, minSpeedup float64, timeout time.Duration, out string, keepLogs bool) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	bin, err := os.MkdirTemp("", "hslbloadfleet-bin-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(bin)
	f := &fleet{
		ctx:       ctx,
		serverBin: filepath.Join(bin, "hslbserver"),
		routerBin: filepath.Join(bin, "hslbrouter"),
		keepLogs:  keepLogs,
	}
	for target, pkg := range map[string]string{f.serverBin: "./cmd/hslbserver", f.routerBin: "./cmd/hslbrouter"} {
		build := exec.CommandContext(ctx, "go", "build", "-o", target, pkg)
		build.Stdout, build.Stderr = os.Stdout, os.Stderr
		if err := build.Run(); err != nil {
			return fmt.Errorf("build %s: %w", pkg, err)
		}
	}
	defer f.reapAll()

	rep := &report{
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		PhaseNs:    int64(phase),
		Clients:    clients,
		MinSpeedup: minSpeedup,
	}

	var failed []string
	if err := f.scalingPhase(rep, phase, clients, minSpeedup); err != nil {
		failed = append(failed, err.Error())
	}
	if err := f.peerWarmPhase(rep); err != nil {
		failed = append(failed, err.Error())
	}
	if err := f.failoverPhase(rep, phase, clients); err != nil {
		failed = append(failed, err.Error())
	}
	if err := f.replicaPhase(rep); err != nil {
		failed = append(failed, err.Error())
	}
	if err := f.resizePhase(rep, phase, clients); err != nil {
		failed = append(failed, err.Error())
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("report written to %s\n", out)
	if len(failed) > 0 {
		return fmt.Errorf("%s", strings.Join(failed, "; "))
	}
	return nil
}

// scalingPhase measures closed-loop goodput through the router at 1 and 4
// shards and applies the near-linear-scaling gate on capable hosts.
func (f *fleet) scalingPhase(rep *report, phase time.Duration, clients int, minSpeedup float64) error {
	measure := func(shards int) (float64, error) {
		var urls []string
		var cmds []*exec.Cmd
		for i := 0; i < shards; i++ {
			url, cmd, err := f.startShard("-concurrency", "2")
			if err != nil {
				return 0, err
			}
			urls = append(urls, url)
			cmds = append(cmds, cmd)
		}
		front, frontCmd, err := f.startRouter(urls)
		if err != nil {
			return 0, err
		}
		res := f.closedLoop(front, phase, clients, nil)
		reap(frontCmd, syscall.SIGTERM)
		for _, c := range cmds {
			reap(c, syscall.SIGTERM)
		}
		if res.errors > 0 {
			return 0, fmt.Errorf("scaling phase (%d shards): %d transport errors", shards, res.errors)
		}
		return res.goodput(), nil
	}

	g1, err := measure(1)
	if err != nil {
		return err
	}
	fmt.Printf("scaling: 1 shard: %.1f full-quality answers/s\n", g1)
	g4, err := measure(4)
	if err != nil {
		return err
	}
	fmt.Printf("scaling: 4 shards: %.1f full-quality answers/s\n", g4)

	rep.Scaling.OneShardGoodput = g1
	rep.Scaling.FourShardGoodput = g4
	if g1 > 0 {
		rep.Scaling.Speedup = g4 / g1
	}
	if runtime.NumCPU() < 4 {
		reason := fmt.Sprintf("skipped: host has %d CPU(s), shards cannot scale below 4", runtime.NumCPU())
		rep.Scaling.Gate = reason
		fmt.Println("scaling gate " + reason)
		return nil
	}
	if g1 <= 0 {
		rep.Scaling.Gate = "fail: single-shard phase produced no full-quality answers"
		return fmt.Errorf("scaling: no single-shard goodput to calibrate against")
	}
	if rep.Scaling.Speedup < minSpeedup {
		rep.Scaling.Gate = "fail"
		return fmt.Errorf("scaling: 4 shards deliver %.2fx the 1-shard goodput, need >= %.1fx",
			rep.Scaling.Speedup, minSpeedup)
	}
	rep.Scaling.Gate = "pass"
	fmt.Printf("scaling gate pass: %.2fx >= %.1fx\n", rep.Scaling.Speedup, minSpeedup)
	return nil
}

// peerWarmPhase proves a shard can answer a model it never solved: shard A
// solves and persists it, then sibling shard B serves it through the
// router with zero local solver invocations.
func (f *fleet) peerWarmPhase(rep *report) error {
	model := fleetModel(424242)

	dirA, err := os.MkdirTemp("", "hslbloadfleet-a-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dirA)
	urlA, cmdA, err := f.startShard("-store-dir", dirA, "-cache-persist")
	if err != nil {
		return err
	}
	defer reap(cmdA, syscall.SIGTERM)
	clientA := neos.NewClient(urlA)
	first, err := clientA.Solve(f.ctx, &neos.SolveRequest{Model: model})
	if err != nil {
		return fmt.Errorf("peer-warm: solve on shard A: %w", err)
	}
	if first.Status != "optimal" {
		return fmt.Errorf("peer-warm: shard A status %q", first.Status)
	}

	dirB, err := os.MkdirTemp("", "hslbloadfleet-b-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dirB)
	urlB, cmdB, err := f.startShard("-store-dir", dirB, "-cache-persist", "-peers", urlA)
	if err != nil {
		return err
	}
	defer reap(cmdB, syscall.SIGTERM)
	front, frontCmd, err := f.startRouter([]string{urlB})
	if err != nil {
		return err
	}
	defer reap(frontCmd, syscall.SIGTERM)

	frontClient := neos.NewClient(front)
	second, err := frontClient.Solve(f.ctx, &neos.SolveRequest{Model: model})
	if err != nil {
		return fmt.Errorf("peer-warm: solve through router: %w", err)
	}
	if second.Status != "optimal" || second.Objective != first.Objective {
		return fmt.Errorf("peer-warm: answer %+v through router, want %+v", second, first)
	}
	m, err := neos.NewClient(urlB).Metrics(f.ctx)
	if err != nil {
		return err
	}
	rep.PeerWarm.SolverInvocations = m.Solves.Count
	if m.Peer != nil {
		rep.PeerWarm.Hits = m.Peer.Hits
	}
	if m.Solves.Count != 0 {
		rep.PeerWarm.Gate = "fail"
		return fmt.Errorf("peer-warm: shard B invoked its solver %d times; the answer should have come from shard A's store", m.Solves.Count)
	}
	if rep.PeerWarm.Hits == 0 {
		rep.PeerWarm.Gate = "fail"
		return fmt.Errorf("peer-warm: no peer hit recorded on shard B")
	}
	rep.PeerWarm.Gate = "pass"
	fmt.Printf("peer-warm gate pass: %d peer hit(s), 0 solver invocations on the sibling\n", rep.PeerWarm.Hits)
	return nil
}

// failoverPhase SIGKILLs one of two shards with requests provably in
// flight and checks that every request still reaches exactly one terminal
// outcome, with successes continuing after the kill.
func (f *fleet) failoverPhase(rep *report, phase time.Duration, clients int) error {
	type shard struct {
		url string
		cmd *exec.Cmd
	}
	var shards []shard
	var urls []string
	for i := 0; i < 2; i++ {
		url, cmd, err := f.startShard("-concurrency", "2")
		if err != nil {
			return err
		}
		shards = append(shards, shard{url, cmd})
		urls = append(urls, url)
		defer reap(cmd, syscall.SIGTERM)
	}
	front, frontCmd, err := f.startRouter(urls)
	if err != nil {
		return err
	}
	defer reap(frontCmd, syscall.SIGTERM)

	// The kill goroutine waits until the router reports in-flight requests
	// on some shard, then SIGKILLs that shard's process — so the kill
	// provably lands mid-request, not between requests. killedCh closes at
	// the kill; victimURL records which shard died.
	var victimURL atomic.Value
	killedCh := make(chan struct{})
	go func() {
		deadline := time.Now().Add(phase)
		for time.Now().Before(deadline) {
			m, err := routerMetrics(front)
			if err == nil {
				for _, s := range m.Shards {
					if s.Inflight > 0 {
						for _, sh := range shards {
							if sh.url == s.URL {
								_ = sh.cmd.Process.Kill()
								_ = sh.cmd.Wait()
								victimURL.Store(s.URL)
								close(killedCh)
								return
							}
						}
					}
				}
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	var okAfterKill atomic.Uint64
	res := f.closedLoop(front, 2*phase, clients, func(outcome string) {
		select {
		case <-killedCh:
		default:
			return
		}
		if outcome == "full" {
			okAfterKill.Add(1)
		}
	})
	victim, _ := victimURL.Load().(string)
	if victim == "" {
		return fmt.Errorf("failover: no kill window — router never reported an in-flight request")
	}
	fmt.Printf("failover: SIGKILLed shard %s mid-request\n", victim)

	m, err := routerMetrics(front)
	if err != nil {
		return err
	}
	rep.Failover.Requests = res.full + res.partial + res.shed + res.errors
	rep.Failover.OK = res.full
	rep.Failover.Shed = res.shed
	rep.Failover.Errors = res.errors
	rep.Failover.OKAfterKill = okAfterKill.Load()
	rep.Failover.RouterFailovers = m.Failovers

	// Every request one terminal outcome: nothing may surface as a client
	// transport error — the router absorbs the dead shard and either
	// relays a live shard's answer or sheds with its own 503.
	if res.errors > 0 {
		rep.Failover.Gate = "fail"
		return fmt.Errorf("failover: %d request(s) ended in a transport error instead of a terminal response", res.errors)
	}
	if okAfterKill.Load() == 0 {
		rep.Failover.Gate = "fail"
		return fmt.Errorf("failover: no successful answers after the kill; the surviving shard never took over")
	}
	rep.Failover.Gate = "pass"
	fmt.Printf("failover gate pass: %d requests, 0 errors, %d ok after the kill, %d router failover(s)\n",
		rep.Failover.Requests, rep.Failover.OKAfterKill, m.Failovers)
	return nil
}

// replicaPhase is the self-healing acceptance: three replicated shards
// (R=2) behind the router, a solved corpus, then one shard SIGKILLed — the
// dead shard's digests must be answered by their replica owners with ZERO
// additional solver invocations fleet-wide.
func (f *fleet) replicaPhase(rep *report) error {
	// Mutual peering needs every URL before any shard starts: allocate the
	// addresses first, then start each shard replicated against the others.
	const nShards = 3
	addrs := make([]string, nShards)
	urls := make([]string, nShards)
	for i := range addrs {
		a, err := freeAddr()
		if err != nil {
			return err
		}
		addrs[i] = a
		urls[i] = "http://" + a
	}
	type shard struct {
		url string
		cmd *exec.Cmd
	}
	shards := make([]shard, 0, nShards)
	for i, addr := range addrs {
		dir, err := os.MkdirTemp("", "hslbloadfleet-repl-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		var peers []string
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		url, cmd, err := f.startShardAt(addr,
			"-store-dir", dir, "-cache-persist",
			"-replicate", "2", "-self-url", urls[i],
			"-peers", strings.Join(peers, ","),
			"-peer-budget", "500ms")
		if err != nil {
			return err
		}
		defer reap(cmd, syscall.SIGTERM)
		shards = append(shards, shard{url, cmd})
	}
	front, frontCmd, err := f.startRouter(urls)
	if err != nil {
		return err
	}
	defer reap(frontCmd, syscall.SIGTERM)

	// The router's ring and the shards' replica ownership use the same
	// rendezvous rule over the same URL strings, so this local ring
	// predicts both: digest homes and replica owners.
	ringShards := make([]*router.Shard, nShards)
	for i, u := range urls {
		ringShards[i] = &router.Shard{ID: u, URL: u}
	}
	ring := router.NewRing(ringShards, 0)

	// Solve a corpus through the router, growing it until the designated
	// victim homes at least 3 digests.
	victim := shards[0]
	frontClient := neos.NewClient(front)
	type entry struct {
		model     string
		key       string
		objective float64
	}
	var corpus []entry
	var victimDigests int
	base := phaseSeq.Add(1) * 1_000_000_000
	for i := uint64(0); victimDigests < 3 || len(corpus) < 8; i++ {
		if i > 64 {
			return fmt.Errorf("replication: victim %s homed %d of %d digests; rendezvous placement looks broken",
				victim.url, victimDigests, len(corpus))
		}
		model := fleetModel(base + i)
		key, err := neos.RequestKey(&neos.SolveRequest{Model: model})
		if err != nil {
			return err
		}
		out, err := frontClient.Solve(f.ctx, &neos.SolveRequest{Model: model})
		if err != nil {
			return fmt.Errorf("replication: corpus solve: %w", err)
		}
		if out.Status != "optimal" || out.Quality != "" {
			return fmt.Errorf("replication: corpus solve status %q quality %q", out.Status, out.Quality)
		}
		corpus = append(corpus, entry{model, key, out.Objective})
		if ring.Order(key)[0].ID == victim.url {
			victimDigests++
		}
	}
	rep.Replication.Corpus = len(corpus)
	rep.Replication.VictimDigests = victimDigests

	// Convergence: every digest persisted on both of its owners.
	check := &http.Client{Timeout: 5 * time.Second}
	hasKey := func(shardURL, key string) bool {
		resp, err := check.Get(shardURL + "/history/solve/" + key + "?limit=1")
		if err != nil {
			return false
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	}
	deadline := time.Now().Add(30 * time.Second)
	for _, e := range corpus {
		owners := ring.Order(e.key)[:2]
		for _, o := range owners {
			for !hasKey(o.ID, e.key) {
				if time.Now().After(deadline) {
					return fmt.Errorf("replication: digest %.12s… never converged onto owner %s", e.key, o.ID)
				}
				time.Sleep(10 * time.Millisecond)
			}
		}
	}

	// Snapshot survivor solver counts, then SIGKILL the victim.
	survivorSolves := func() (solves, ingests uint64, err error) {
		for _, s := range shards[1:] {
			m, err := neos.NewClient(s.url).Metrics(f.ctx)
			if err != nil {
				return 0, 0, err
			}
			solves += m.Solves.Count
			if m.Replication != nil {
				ingests += m.Replication.Ingested
			}
		}
		return solves, ingests, nil
	}
	before, ingests, err := survivorSolves()
	if err != nil {
		return err
	}
	rep.Replication.ReplicaIngests = ingests
	rep.Replication.SolvesBeforeKill = before
	_ = victim.cmd.Process.Kill()
	_, _ = victim.cmd.Process.Wait()
	fmt.Printf("replication: SIGKILLed shard %s (home of %d digest(s))\n", victim.url, victimDigests)

	// Replay the whole corpus through the router. The victim's digests must
	// be answered by their replica owners — correct objectives, zero new
	// solver invocations anywhere.
	for _, e := range corpus {
		out, err := frontClient.Solve(f.ctx, &neos.SolveRequest{Model: e.model})
		if err != nil {
			rep.Replication.Gate = "fail"
			return fmt.Errorf("replication: replay of %.12s… failed after the kill: %w", e.key, err)
		}
		if out.Status != "optimal" || out.Objective != e.objective {
			rep.Replication.Gate = "fail"
			return fmt.Errorf("replication: replay of %.12s… = %+v, want optimal %v", e.key, out, e.objective)
		}
	}
	after, _, err := survivorSolves()
	if err != nil {
		return err
	}
	rep.Replication.SolvesAfterReplay = after
	if after != before {
		rep.Replication.Gate = "fail"
		return fmt.Errorf("replication: replay cost %d solver invocation(s); replicas must answer for the dead shard", after-before)
	}
	rep.Replication.Gate = "pass"
	fmt.Printf("replication gate pass: %d digests replayed over a dead shard, 0 solver invocations\n", len(corpus))
	return nil
}

// resizePhase grows the ring 2 -> 3 through POST /admin/shards while a
// closed loop runs: the live resize must fail zero requests and the new
// shard must start taking traffic.
func (f *fleet) resizePhase(rep *report, phase time.Duration, clients int) error {
	var urls []string
	for i := 0; i < 2; i++ {
		url, cmd, err := f.startShard("-concurrency", "2")
		if err != nil {
			return err
		}
		urls = append(urls, url)
		defer reap(cmd, syscall.SIGTERM)
	}
	front, frontCmd, err := f.startRouter(urls)
	if err != nil {
		return err
	}
	defer reap(frontCmd, syscall.SIGTERM)

	// The resize lands mid-loop, with requests provably in flight.
	resized := make(chan error, 1)
	var newShardURL atomic.Value
	go func() {
		time.Sleep(phase / 2)
		url, cmd, err := f.startShard("-concurrency", "2")
		if err != nil {
			resized <- err
			return
		}
		f.track(cmd)
		newShardURL.Store(url)
		body, _ := json.Marshal(map[string][]string{"shards": append(append([]string(nil), urls...), url)})
		resp, err := http.Post(front+"/admin/shards", "application/json", bytes.NewReader(body))
		if err != nil {
			resized <- fmt.Errorf("resize POST: %w", err)
			return
		}
		payload, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			resized <- fmt.Errorf("resize POST: status %d: %s", resp.StatusCode, payload)
			return
		}
		var res struct {
			Added []string `json:"added"`
		}
		if err := json.Unmarshal(payload, &res); err != nil {
			resized <- fmt.Errorf("resize response %q: %w", payload, err)
			return
		}
		rep.Resize.Added = len(res.Added)
		resized <- nil
	}()

	res := f.closedLoop(front, phase, clients, nil)
	if err := <-resized; err != nil {
		rep.Resize.Gate = "fail"
		return fmt.Errorf("resize: %w", err)
	}
	rep.Resize.Requests = res.full + res.partial + res.shed + res.errors
	rep.Resize.Errors = res.errors
	if res.errors > 0 {
		rep.Resize.Gate = "fail"
		return fmt.Errorf("resize: %d request(s) failed across the live resize", res.errors)
	}
	if rep.Resize.Added != 1 {
		rep.Resize.Gate = "fail"
		return fmt.Errorf("resize: admin reported %d added shard(s), want 1", rep.Resize.Added)
	}
	m, err := routerMetrics(front)
	if err != nil {
		return err
	}
	if m.Resizes != 1 {
		rep.Resize.Gate = "fail"
		return fmt.Errorf("resize: router counted %d resizes, want 1", m.Resizes)
	}
	newURL, _ := newShardURL.Load().(string)
	for _, s := range m.Shards {
		if s.URL == newURL {
			rep.Resize.NewShardRouted = s.Routed
		}
	}
	if rep.Resize.NewShardRouted == 0 {
		rep.Resize.Gate = "fail"
		return fmt.Errorf("resize: the added shard took no traffic after joining the live ring")
	}
	rep.Resize.Gate = "pass"
	fmt.Printf("resize gate pass: %d requests, 0 errors across a live 2->3 resize; new shard routed %d\n",
		rep.Resize.Requests, rep.Resize.NewShardRouted)
	return nil
}

// loopResult aggregates one closed-loop phase. partial counts answered
// requests below full quality (deadline or brownout-degraded): terminal
// outcomes, but not goodput and not errors.
type loopResult struct {
	full    uint64
	partial uint64
	shed    uint64
	errors  uint64
	elapsed time.Duration
}

func (r *loopResult) goodput() float64 {
	if r.elapsed <= 0 {
		return 0
	}
	return float64(r.full) / r.elapsed.Seconds()
}

// phaseSeq hands each closed-loop phase a disjoint model-id block.
var phaseSeq atomic.Uint64

// closedLoop drives `clients` workers against front's /solve for dur, one
// unique model per request. onOutcome, when non-nil, observes every
// classified outcome (used by the failover phase).
func (f *fleet) closedLoop(front string, dur time.Duration, clients int, onOutcome func(string)) loopResult {
	var res loopResult
	var mu sync.Mutex
	var ids atomic.Uint64
	// Distinct digests across phases: each closed loop gets its own block
	// of a billion ids.
	ids.Store(phaseSeq.Add(1) * 1_000_000_000)
	client := &http.Client{Timeout: 30 * time.Second}
	deadline := time.Now().Add(dur)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				outcome, retry := doSolve(client, front, fleetModel(ids.Add(1)))
				mu.Lock()
				switch outcome {
				case "full":
					res.full++
				case "partial":
					res.partial++
				case "shed":
					res.shed++
				default:
					res.errors++
				}
				mu.Unlock()
				if onOutcome != nil {
					onOutcome(outcome)
				}
				if outcome == "shed" && retry > 0 {
					if retry > 500*time.Millisecond {
						retry = 500 * time.Millisecond
					}
					time.Sleep(retry)
				}
			}
		}()
	}
	wg.Wait()
	res.elapsed = time.Since(start)
	return res
}

// doSolve issues one /solve and classifies it: "full" (200, full-quality),
// "shed" (429/503, with the server's backoff hint), "error" otherwise.
func doSolve(client *http.Client, front, model string) (outcome string, retry time.Duration) {
	body, _ := json.Marshal(map[string]string{"model": model})
	resp, err := client.Post(front+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		return "error", 0
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return "error", 0
	}
	switch resp.StatusCode {
	case http.StatusOK:
		var out neos.SolveResponse
		if json.Unmarshal(payload, &out) != nil {
			return "error", 0
		}
		if out.Status == "optimal" && out.Quality == "" {
			return "full", 0
		}
		return "partial", 0
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		var shed struct {
			RetryAfterMS int64 `json:"retry_after_ms"`
		}
		_ = json.Unmarshal(payload, &shed)
		return "shed", time.Duration(shed.RetryAfterMS) * time.Millisecond
	default:
		return "error", 0
	}
}

// fleetModel emits a unique near-tie load-balancing model (6 components)
// taking the branch-and-bound a few milliseconds — big enough that shard
// CPU is the bottleneck, small enough that phases finish in seconds.
func fleetModel(id uint64) string {
	const k, n = 6, 800
	var b strings.Builder
	fmt.Fprintf(&b, "var T >= 0 <= 100000;\n")
	for j := 1; j <= k; j++ {
		fmt.Fprintf(&b, "var n%d integer >= 1 <= %d;\n", j, n)
	}
	b.WriteString("minimize total: T;\n")
	for j := 1; j <= k; j++ {
		fmt.Fprintf(&b, "subject to t%d: %0.6f / n%d + %0.6f <= T;\n",
			j, float64(n)*1.375+float64(j)*0.001+float64(id)*0.0001, j, float64(j)*1e-6)
	}
	b.WriteString("subject to cap: ")
	for j := 1; j <= k; j++ {
		if j > 1 {
			b.WriteString(" + ")
		}
		fmt.Fprintf(&b, "n%d", j)
	}
	fmt.Fprintf(&b, " <= %d;\n", n)
	return b.String()
}

// startShard launches one hslbserver with extra args, waiting for /ready.
func (f *fleet) startShard(extra ...string) (string, *exec.Cmd, error) {
	addr, err := freeAddr()
	if err != nil {
		return "", nil, err
	}
	return f.startShardAt(addr, extra...)
}

// startShardAt launches one hslbserver on a pre-allocated address — the
// replication phase needs every member's URL before any member starts.
func (f *fleet) startShardAt(addr string, extra ...string) (string, *exec.Cmd, error) {
	args := append([]string{"-addr", addr, "-solve-timeout", "10s"}, extra...)
	cmd := exec.Command(f.serverBin, args...)
	if f.keepLogs {
		cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
	}
	if err := cmd.Start(); err != nil {
		return "", nil, fmt.Errorf("start shard: %w", err)
	}
	f.track(cmd)
	url := "http://" + addr
	if err := f.waitReady(url); err != nil {
		return "", nil, fmt.Errorf("shard %s: %w", url, err)
	}
	return url, cmd, nil
}

// startRouter launches hslbrouter over the shard URLs, waiting for /ready.
func (f *fleet) startRouter(shards []string) (string, *exec.Cmd, error) {
	addr, err := freeAddr()
	if err != nil {
		return "", nil, err
	}
	cmd := exec.Command(f.routerBin,
		"-addr", addr,
		"-shards", strings.Join(shards, ","),
		"-health-interval", "50ms",
	)
	if f.keepLogs {
		cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
	}
	if err := cmd.Start(); err != nil {
		return "", nil, fmt.Errorf("start router: %w", err)
	}
	f.track(cmd)
	url := "http://" + addr
	if err := f.waitReady(url); err != nil {
		return "", nil, fmt.Errorf("router %s: %w", url, err)
	}
	return url, cmd, nil
}

func (f *fleet) waitReady(url string) error {
	for {
		resp, err := http.Get(url + "/ready")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		select {
		case <-f.ctx.Done():
			return fmt.Errorf("never became ready")
		case <-time.After(25 * time.Millisecond):
		}
	}
}

func routerMetrics(front string) (*router.Metrics, error) {
	resp, err := http.Get(front + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var m router.Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}

func (f *fleet) track(cmd *exec.Cmd) {
	f.mu.Lock()
	f.kids = append(f.kids, cmd)
	f.mu.Unlock()
}

func (f *fleet) reapAll() {
	f.mu.Lock()
	kids := append([]*exec.Cmd(nil), f.kids...)
	f.mu.Unlock()
	for _, c := range kids {
		reap(c, syscall.SIGTERM)
	}
}

func freeAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	defer l.Close()
	return l.Addr().String(), nil
}

// reap terminates a child gracefully, escalating to SIGKILL after 10s.
func reap(cmd *exec.Cmd, sig syscall.Signal) {
	if cmd.Process == nil || cmd.ProcessState != nil {
		return
	}
	_ = cmd.Process.Signal(sig)
	done := make(chan struct{})
	go func() { _, _ = cmd.Process.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		_ = cmd.Process.Kill()
		<-done
	}
}
