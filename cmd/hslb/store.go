package main

import (
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"hslb/internal/ampl"
	"hslb/internal/bench"
	"hslb/internal/cesm"
	"hslb/internal/core"
	"hslb/internal/resultstore"
)

// Subcommands over the versioned result store:
//
//	hslb log  -store-dir D [key]      list keys, or one key's history
//	hslb diff -store-dir D <a> <b>    explain the change between two
//	                                  committed campaigns (refs are keys,
//	                                  commit hashes, or unique prefixes)
//	hslb fsck -store-dir D            integrity-walk the store
//
// The pipeline mode commits its outcome under "campaign/<id>" when run
// with -store-dir (and -campaign to name the run).

// campaignKey is the store key of a named campaign's history.
func campaignKey(id string) string { return "campaign/" + id }

// parseTruthScale parses -truth-scale values like "ocn=1.5,atm=0.9".
func parseTruthScale(s string) (map[cesm.Component]float64, error) {
	if s == "" {
		return nil, nil
	}
	out := map[cesm.Component]float64{}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad -truth-scale entry %q (want comp=factor)", part)
		}
		var comp cesm.Component
		switch strings.ToLower(kv[0]) {
		case "atm":
			comp = cesm.ATM
		case "ocn":
			comp = cesm.OCN
		case "ice":
			comp = cesm.ICE
		case "lnd":
			comp = cesm.LND
		default:
			return nil, fmt.Errorf("unknown component %q in -truth-scale (want atm, ocn, ice or lnd)", kv[0])
		}
		f, err := strconv.ParseFloat(kv[1], 64)
		if err != nil || f <= 0 {
			return nil, fmt.Errorf("bad -truth-scale factor %q for %s (want a positive number)", kv[1], kv[0])
		}
		out[comp] = f
	}
	return out, nil
}

// modelDigest is the ampl.Canonical SHA-256 of the pipeline's generated
// MINLP model — the fingerprint recorded in the campaign record, matching
// the solve service's cache keying.
func modelDigest(spec core.Spec) (string, error) {
	text, err := core.WriteAMPL(spec)
	if err != nil {
		return "", err
	}
	parsed, err := ampl.Parse(text)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256([]byte(parsed.CanonicalForm()))
	return hex.EncodeToString(sum[:]), nil
}

// campaignRecord assembles the committed record of one pipeline run.
func campaignRecord(id string, po core.PipelineOptions, pr *core.PipelineResult) (resultstore.CampaignRecord, error) {
	spec := po.Spec
	spec.Perf = bench.Models(pr.Fits)
	digest, err := modelDigest(spec)
	if err != nil {
		return resultstore.CampaignRecord{}, fmt.Errorf("model digest: %w", err)
	}
	rec := resultstore.CampaignRecord{
		ID:               id,
		Resolution:       spec.Resolution.String(),
		Layout:           int(spec.Layout) + 1,
		TotalNodes:       spec.TotalNodes,
		Objective:        spec.Objective.String(),
		Seed:             po.Campaign.Seed,
		ObjectiveSeconds: pr.Decision.PredictedTime,
		Nodes:            map[string]int{},
		Threads:          map[string]int{},
		PredictedComp:    map[string]float64{},
		Fits:             map[string]resultstore.FitParams{},
		ModelDigest:      digest,
	}
	if pr.Execution != nil {
		rec.ActualSeconds = pr.Execution.Total
	}
	if pr.Quality != nil {
		rec.SolvePath = pr.Quality.SolvePath
	}
	for _, c := range cesm.OptimizedComponents {
		name := c.String()
		n := pr.Decision.Alloc.Get(c)
		rec.Nodes[name] = n
		rec.Threads[name] = n * cesm.CoresPerNode
		rec.PredictedComp[name] = pr.Decision.PredictedComp[c]
		if f := pr.Fits[c]; f != nil {
			rec.Fits[name] = resultstore.FitParams{
				A: f.Model.A, B: f.Model.B, C: f.Model.C, D: f.Model.D, R2: f.R2,
			}
		}
	}
	for c, f := range po.Campaign.TruthScale {
		if rec.TruthScale == nil {
			rec.TruthScale = map[string]float64{}
		}
		rec.TruthScale[c.String()] = f
	}
	return rec, nil
}

// commitCampaign writes the record as the head of campaign/<id>.
func commitCampaign(rs *resultstore.Store, rec resultstore.CampaignRecord) (resultstore.Commit, error) {
	b, err := resultstore.EncodeCampaign(rec)
	if err != nil {
		return resultstore.Commit{}, err
	}
	meta := map[string]string{"solve_path": rec.SolvePath}
	return rs.Commit(campaignKey(rec.ID), b, meta)
}

func openStore(dir string) (*resultstore.Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("-store-dir is required")
	}
	return resultstore.Open(dir, resultstore.Options{})
}

// runLog implements `hslb log`.
func runLog(args []string) error {
	fs := flag.NewFlagSet("hslb log", flag.ContinueOnError)
	storeDir := fs.String("store-dir", "", "result store directory")
	limit := fs.Int("n", 0, "show at most n commits (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rs, err := openStore(*storeDir)
	if err != nil {
		return err
	}
	defer rs.Close()

	if fs.NArg() == 0 {
		keys := rs.Keys()
		if len(keys) == 0 {
			fmt.Println("empty store")
			return nil
		}
		for _, key := range keys {
			head, _ := rs.Head(key)
			fmt.Printf("%-40s %s  seq %d\n", key, shortHash(head.Hash), head.Seq)
		}
		return nil
	}

	key := fs.Arg(0)
	log, err := rs.Log(key, *limit)
	if err != nil {
		return err
	}
	for _, c := range log {
		line := fmt.Sprintf("%s  seq %-4d %s", shortHash(c.Hash), c.Seq,
			time.Unix(c.Unix, 0).UTC().Format("2006-01-02 15:04:05"))
		for _, k := range sortedMetaKeys(c.Meta) {
			line += fmt.Sprintf("  %s=%s", k, c.Meta[k])
		}
		fmt.Println(line)
	}
	return nil
}

// runDiff implements `hslb diff <ref> <ref>`.
func runDiff(args []string) error {
	fs := flag.NewFlagSet("hslb diff", flag.ContinueOnError)
	storeDir := fs.String("store-dir", "", "result store directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: hslb diff -store-dir DIR <from> <to> (campaign IDs, keys, or commit hashes)")
	}
	rs, err := openStore(*storeDir)
	if err != nil {
		return err
	}
	defer rs.Close()

	from, err := loadCampaign(rs, fs.Arg(0))
	if err != nil {
		return err
	}
	to, err := loadCampaign(rs, fs.Arg(1))
	if err != nil {
		return err
	}
	resultstore.DiffCampaigns(from, to).Format(os.Stdout)
	return nil
}

// loadCampaign resolves a ref — a campaign ID, full store key, or commit
// hash (prefix) — to its committed campaign record.
func loadCampaign(rs *resultstore.Store, ref string) (resultstore.CampaignRecord, error) {
	c, err := rs.ResolveCommit(ref)
	if err != nil {
		// Bare campaign IDs resolve through their key namespace.
		if c2, err2 := rs.ResolveCommit(campaignKey(ref)); err2 == nil {
			c = c2
		} else {
			return resultstore.CampaignRecord{}, err
		}
	}
	b, err := rs.Value(c)
	if err != nil {
		return resultstore.CampaignRecord{}, err
	}
	return resultstore.DecodeCampaign(b)
}

// runFsck implements `hslb fsck`.
func runFsck(args []string) error {
	fs := flag.NewFlagSet("hslb fsck", flag.ContinueOnError)
	storeDir := fs.String("store-dir", "", "result store directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rs, err := openStore(*storeDir)
	if err != nil {
		return err
	}
	defer rs.Close()

	rep, err := rs.Fsck()
	if err != nil {
		return err
	}
	fmt.Printf("fsck: %d chunks, %d bytes verified\n", rep.Chunks, rep.Bytes)
	if rep.OK() {
		fmt.Println("fsck: clean")
		return nil
	}
	for _, c := range rep.Corruption {
		fmt.Printf("fsck: CORRUPT %s: %s\n", shortHash(c.Hash), c.Reason)
	}
	return fmt.Errorf("fsck found %d problem(s)", len(rep.Corruption))
}

func shortHash(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}

func sortedMetaKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
