package main

import (
	"testing"

	"hslb/internal/cesm"
	"hslb/internal/core"
)

func TestParseResolution(t *testing.T) {
	cases := map[string]cesm.Resolution{
		"1deg": cesm.Res1Deg, "1": cesm.Res1Deg,
		"0.125deg": cesm.Res8thDeg, "1/8": cesm.Res8thDeg, "8th": cesm.Res8thDeg,
	}
	for in, want := range cases {
		got, err := parseResolution(in)
		if err != nil || got != want {
			t.Errorf("parseResolution(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseResolution("2deg"); err == nil {
		t.Error("unknown resolution accepted")
	}
}

func TestParseLayout(t *testing.T) {
	for n, want := range map[int]cesm.Layout{1: cesm.Layout1, 2: cesm.Layout2, 3: cesm.Layout3} {
		got, err := parseLayout(n)
		if err != nil || got != want {
			t.Errorf("parseLayout(%d) = %v, %v", n, got, err)
		}
	}
	for _, bad := range []int{0, 4, -1} {
		if _, err := parseLayout(bad); err == nil {
			t.Errorf("layout %d accepted", bad)
		}
	}
}

func TestParseObjective(t *testing.T) {
	cases := map[string]core.Objective{
		"min-max": core.MinMax, "max-min": core.MaxMin, "min-sum": core.MinSum,
	}
	for in, want := range cases {
		got, err := parseObjective(in)
		if err != nil || got != want {
			t.Errorf("parseObjective(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseObjective("min-mean"); err == nil {
		t.Error("unknown objective accepted")
	}
}
