// Command hslb runs the Heuristic Static Load-Balancing pipeline for the
// simulated CESM machine: gather benchmark data, fit performance models,
// solve the MINLP allocation problem, and execute the chosen layout.
//
// Usage:
//
//	hslb -res 1deg -nodes 128                 # full pipeline at 1°, 128 nodes
//	hslb -res 0.125deg -nodes 32768 -free-ocn # lift the ocean constraint
//	hslb -res 1deg -nodes 512 -layout 2       # optimize layout 2
//	hslb -objective min-sum                   # alternative objective
//	hslb -res 1deg -nodes 512 -advise         # §IV-C node-count advice
//	hslb -res 1deg -nodes 128 -pelayout       # also emit env_mach_pes XML
//
// With -store-dir the run is committed into the content-addressed result
// store as campaign/<id>, and the store subcommands inspect the history:
//
//	hslb -nodes 128 -store-dir /var/hslb -campaign base
//	hslb -nodes 128 -store-dir /var/hslb -campaign slow-ocn -truth-scale ocn=1.5
//	hslb log  -store-dir /var/hslb                 # list keys / history
//	hslb diff -store-dir /var/hslb base slow-ocn   # explain the change
//	hslb fsck -store-dir /var/hslb                 # verify integrity
package main

import (
	"flag"
	"fmt"
	"os"

	"hslb/internal/bench"
	"hslb/internal/cesm"
	"hslb/internal/core"
	"hslb/internal/perf"
	"hslb/internal/report"
	"hslb/internal/resultstore"
)

func main() {
	err := dispatch()
	if err != nil {
		fmt.Fprintln(os.Stderr, "hslb:", err)
		os.Exit(1)
	}
}

// dispatch routes the store subcommands (log, diff, fsck) and falls
// through to the pipeline for everything else.
func dispatch() error {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "log":
			return runLog(os.Args[2:])
		case "diff":
			return runDiff(os.Args[2:])
		case "fsck":
			return runFsck(os.Args[2:])
		}
	}
	return run()
}

func run() error {
	resFlag := flag.String("res", "1deg", "resolution: 1deg or 0.125deg")
	nodes := flag.Int("nodes", 128, "total nodes N to allocate")
	layoutFlag := flag.Int("layout", 1, "component layout 1-3 (Figure 1)")
	freeOcn := flag.Bool("free-ocn", false, "lift the hard-coded ocean node-count set")
	objFlag := flag.String("objective", "min-max", "objective: min-max, max-min or min-sum")
	syncTol := flag.Float64("sync-tol", 0, "land/ice synchronization tolerance in seconds (0 = off)")
	seed := flag.Int64("seed", 1, "machine noise seed")
	points := flag.Int("points", 6, "benchmark node counts to gather (>= 4)")
	repeats := flag.Int("repeats", 2, "benchmark repeats per node count")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	pelayout := flag.Bool("pelayout", false, "also print the env_mach_pes-style XML for the chosen allocation")
	advise := flag.Bool("advise", false, "sweep machine sizes and advise a node count (§IV-C) instead of optimizing one size")
	effThreshold := flag.Float64("eff", 0.7, "parallel-efficiency threshold for -advise")
	storeDir := flag.String("store-dir", "", "result store directory; the run is committed under campaign/<id> (see also: hslb log, diff, fsck)")
	campaignID := flag.String("campaign", "", "campaign ID for the result-store commit (default run-<seed>-<nodes>)")
	truthScaleFlag := flag.String("truth-scale", "", "perturb the machine's ground-truth times, e.g. ocn=1.5,atm=0.9")
	flag.Parse()

	res, err := parseResolution(*resFlag)
	if err != nil {
		return err
	}
	layout, err := parseLayout(*layoutFlag)
	if err != nil {
		return err
	}
	objective, err := parseObjective(*objFlag)
	if err != nil {
		return err
	}

	truthScale, err := parseTruthScale(*truthScaleFlag)
	if err != nil {
		return err
	}

	minN, maxN := 32, 2048
	if res == cesm.Res8thDeg {
		minN, maxN = 1024, 32768
	}
	if *nodes > maxN {
		maxN = *nodes
	}

	var rs *resultstore.Store
	id := *campaignID
	if *storeDir != "" {
		rs, err = openStore(*storeDir)
		if err != nil {
			return err
		}
		defer rs.Close()
		if id == "" {
			id = fmt.Sprintf("run-%d-%d", *seed, *nodes)
		}
	} else if id != "" {
		return fmt.Errorf("-campaign requires -store-dir")
	}

	po := core.PipelineOptions{
		Campaign: bench.Campaign{
			Resolution: res,
			Layout:     layout,
			NodeCounts: perf.SamplingPlan(minN, maxN, *points),
			Repeats:    *repeats,
			Seed:       *seed,
			TruthScale: truthScale,
			Results:    rs,
			CampaignID: id,
		},
		Spec: core.Spec{
			Resolution:     res,
			Layout:         layout,
			TotalNodes:     *nodes,
			Objective:      objective,
			SyncTol:        *syncTol,
			ConstrainOcean: !*freeOcn,
			ConstrainAtm:   true,
		},
		Fit:         perf.FitOptions{ConvexExponent: true},
		Solver:      core.SolverOptions(),
		ExecuteSeed: *seed + 100,
	}
	if *advise {
		return runAdvise(po, *effThreshold)
	}

	pr, err := core.RunPipeline(po)
	if err != nil {
		return err
	}

	fmt.Printf("HSLB pipeline: %s, layout %d, N=%d, objective %s\n\n",
		res, *layoutFlag, *nodes, objective)

	fitT := report.NewTable("Step 2 — fitted performance models",
		"component", "a", "b", "c", "d", "R2")
	for _, c := range cesm.OptimizedComponents {
		f := pr.Fits[c]
		fitT.AddRow(c.String(), f.Model.A, f.Model.B, f.Model.C, f.Model.D, f.R2)
	}

	dec := pr.Decision
	decT := report.NewTable("Step 3/4 — allocation, predicted and actual times",
		"component", "nodes", "predicted s", "actual s")
	for _, c := range cesm.OptimizedComponents {
		decT.AddRow(c.String(), dec.Alloc.Get(c), dec.PredictedComp[c], pr.Execution.Comp[c])
	}
	decT.AddSeparator()
	decT.AddRow("TOTAL", *nodes, dec.PredictedTime, pr.Execution.Total)

	if *csv {
		fitT.CSV(os.Stdout)
		fmt.Println()
		decT.CSV(os.Stdout)
	} else {
		fitT.Render(os.Stdout)
		fmt.Println()
		decT.Render(os.Stdout)
		fmt.Printf("\nsolver: %d B&B nodes, %d NLP solves, %d OA cuts\n",
			dec.Nodes, dec.NLPSolves, dec.Cuts)
	}
	if *pelayout {
		pl, err := cesm.NewPELayout(layout, *nodes, dec.Alloc)
		if err != nil {
			return err
		}
		fmt.Println()
		if err := pl.WriteXML(os.Stdout); err != nil {
			return err
		}
	}
	if rs != nil {
		rec, err := campaignRecord(id, po, pr)
		if err != nil {
			return err
		}
		c, err := commitCampaign(rs, rec)
		if err != nil {
			return err
		}
		fmt.Printf("\ncommitted campaign %s as %s (seq %d); compare runs with: hslb diff -store-dir %s <from> %s\n",
			id, shortHash(c.Hash), c.Seq, *storeDir, id)
	}
	return nil
}

// runAdvise runs the gather+fit steps once, then sweeps machine sizes.
func runAdvise(po core.PipelineOptions, effThreshold float64) error {
	data, err := po.Campaign.Run()
	if err != nil {
		return err
	}
	fits, err := data.FitAll(po.Fit)
	if err != nil {
		return err
	}
	spec := po.Spec
	spec.Perf = bench.Models(fits)
	var sizes []int
	for n := 64; n <= spec.TotalNodes; n *= 2 {
		sizes = append(sizes, n)
	}
	if len(sizes) == 0 || sizes[len(sizes)-1] != spec.TotalNodes {
		sizes = append(sizes, spec.TotalNodes)
	}
	adv, err := core.AdviseNodeCount(spec, sizes, effThreshold, core.SolverOptions())
	if err != nil {
		return err
	}
	t := report.NewTable("Node-count advice (§IV-C)",
		"nodes", "predicted s", "efficiency", "core-h / sim-year", "allocation")
	for _, p := range adv.Points {
		t.AddRow(p.TotalNodes, p.Predicted, p.Efficiency, p.CoreHoursPerSimYear, p.Alloc.String())
	}
	t.Render(os.Stdout)
	fmt.Printf("\nshortest time at %d nodes; cost-efficient (eff >= %.0f%%) at %d nodes\n",
		adv.ShortestTime, effThreshold*100, adv.CostEfficient)
	return nil
}

func parseResolution(s string) (cesm.Resolution, error) {
	switch s {
	case "1deg", "1":
		return cesm.Res1Deg, nil
	case "0.125deg", "1/8", "8th":
		return cesm.Res8thDeg, nil
	default:
		return 0, fmt.Errorf("unknown resolution %q (want 1deg or 0.125deg)", s)
	}
}

func parseLayout(n int) (cesm.Layout, error) {
	switch n {
	case 1:
		return cesm.Layout1, nil
	case 2:
		return cesm.Layout2, nil
	case 3:
		return cesm.Layout3, nil
	default:
		return 0, fmt.Errorf("layout must be 1, 2 or 3")
	}
}

func parseObjective(s string) (core.Objective, error) {
	switch s {
	case "min-max":
		return core.MinMax, nil
	case "max-min":
		return core.MaxMin, nil
	case "min-sum":
		return core.MinSum, nil
	default:
		return 0, fmt.Errorf("unknown objective %q", s)
	}
}
