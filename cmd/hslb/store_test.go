package main

import (
	"bytes"
	"strings"
	"testing"

	"hslb/internal/bench"
	"hslb/internal/cesm"
	"hslb/internal/core"
	"hslb/internal/perf"
	"hslb/internal/resultstore"
)

// runAndCommit runs the full pipeline at a fixed seed with an optional
// truth perturbation and commits the outcome under campaign/<id>.
func runAndCommit(t *testing.T, rs *resultstore.Store, id string, scale map[cesm.Component]float64) resultstore.CampaignRecord {
	t.Helper()
	po := core.PipelineOptions{
		Campaign: bench.Campaign{
			Resolution: cesm.Res1Deg,
			Layout:     cesm.Layout1,
			NodeCounts: []int{32, 48, 64, 128, 256},
			Repeats:    1,
			Seed:       7,
			TruthScale: scale,
			Results:    rs,
			CampaignID: id,
		},
		Spec: core.Spec{
			Resolution:     cesm.Res1Deg,
			Layout:         cesm.Layout1,
			TotalNodes:     128,
			Objective:      core.MinMax,
			ConstrainOcean: true,
			ConstrainAtm:   true,
		},
		Solver:      core.SolverOptions(),
		ExecuteSeed: 107,
	}
	pr, err := core.RunPipeline(po)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := campaignRecord(id, po, pr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := commitCampaign(rs, rec); err != nil {
		t.Fatal(err)
	}
	return rec
}

// TestDiffTwoCampaignsDeterministic is the acceptance scenario: two
// fixed-seed campaigns — the second on a machine whose ocean truth
// function slowed down — are committed to one store, and `hslb diff`
// between them prints the objective delta and per-component allocation
// changes, byte-identically on every render and across a store reopen.
func TestDiffTwoCampaignsDeterministic(t *testing.T) {
	dir := t.TempDir()
	rs, err := openStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	runAndCommit(t, rs, "base", nil)
	runAndCommit(t, rs, "slow-ocn", map[cesm.Component]float64{cesm.OCN: 2.0})
	if err := rs.Close(); err != nil {
		t.Fatal(err)
	}

	render := func() string {
		rs, err := openStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer rs.Close()
		from, err := loadCampaign(rs, "base")
		if err != nil {
			t.Fatal(err)
		}
		to, err := loadCampaign(rs, "slow-ocn")
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		resultstore.DiffCampaigns(from, to).Format(&buf)
		return buf.String()
	}

	first := render()
	t.Logf("diff output:\n%s", first)
	for i := 0; i < 2; i++ {
		if again := render(); again != first {
			t.Fatalf("diff render %d differs:\n--- first\n%s\n--- again\n%s", i, first, again)
		}
	}

	for _, want := range []string{
		"campaign diff: base -> slow-ocn",
		"objective:",
		"truth functions perturbed: ocn ×1 -> ×2",
	} {
		if !strings.Contains(first, want) {
			t.Errorf("diff output missing %q:\n%s", want, first)
		}
	}
	// A 2x slower ocean must change the predicted objective, and the diff
	// must explain the change per component (allocation and/or fits).
	if strings.Contains(first, "  no change") {
		t.Fatalf("diff reports no change between perturbed campaigns:\n%s", first)
	}
	if !strings.Contains(first, "allocation:") && !strings.Contains(first, "fit parameters:") {
		t.Fatalf("diff has no per-component explanation:\n%s", first)
	}
}

// TestLoadCampaignRefs exercises ref resolution: bare campaign ID, full
// store key, and unique commit-hash prefix all resolve to the same record.
func TestLoadCampaignRefs(t *testing.T) {
	dir := t.TempDir()
	rs, err := openStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	rec := resultstore.CampaignRecord{
		ID: "demo", Resolution: "1deg", Layout: 1, TotalNodes: 64,
		Objective: "min-max", ObjectiveSeconds: 3.5,
		Nodes:   map[string]int{"atm": 32},
		Threads: map[string]int{"atm": 128},
		Fits:    map[string]resultstore.FitParams{},
	}
	c, err := commitCampaign(rs, rec)
	if err != nil {
		t.Fatal(err)
	}
	for _, ref := range []string{"demo", campaignKey("demo"), c.Hash, c.Hash[:8]} {
		got, err := loadCampaign(rs, ref)
		if err != nil {
			t.Fatalf("loadCampaign(%q): %v", ref, err)
		}
		if got.ID != "demo" || got.ObjectiveSeconds != 3.5 {
			t.Fatalf("loadCampaign(%q) = %+v", ref, got)
		}
	}
	if _, err := loadCampaign(rs, "no-such-campaign"); err == nil {
		t.Fatal("unknown ref resolved")
	}
}

func TestParseTruthScale(t *testing.T) {
	got, err := parseTruthScale("ocn=1.5, atm=0.9")
	if err != nil {
		t.Fatal(err)
	}
	if got[cesm.OCN] != 1.5 || got[cesm.ATM] != 0.9 || len(got) != 2 {
		t.Fatalf("parseTruthScale = %v", got)
	}
	if got, err := parseTruthScale(""); err != nil || got != nil {
		t.Fatalf("empty scale = %v, %v", got, err)
	}
	for _, bad := range []string{"cpl=2", "ocn", "ocn=-1", "ocn=0", "ocn=fast"} {
		if _, err := parseTruthScale(bad); err == nil {
			t.Errorf("parseTruthScale(%q) accepted", bad)
		}
	}
}

// TestModelDigestStability: identical specs share a digest, a changed
// node budget changes it.
func TestModelDigestStability(t *testing.T) {
	spec := core.Spec{
		Resolution: cesm.Res1Deg, Layout: cesm.Layout1, TotalNodes: 128,
		Objective: core.MinMax, ConstrainOcean: true, ConstrainAtm: true,
		Perf: map[cesm.Component]perf.Model{},
	}
	for _, c := range cesm.OptimizedComponents {
		spec.Perf[c] = perf.Model{A: 100, B: 0.5, C: 1.2, D: 0.1}
	}
	d1, err := modelDigest(spec)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := modelDigest(spec)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 || len(d1) != 64 {
		t.Fatalf("digest unstable: %q vs %q", d1, d2)
	}
	spec.TotalNodes = 256
	d3, err := modelDigest(spec)
	if err != nil {
		t.Fatal(err)
	}
	if d3 == d1 {
		t.Fatal("digest ignored a node-budget change")
	}
}
