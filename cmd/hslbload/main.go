// Command hslbload is a closed-loop overload generator for the solve
// service. It starts an in-process protected server (overload stack on),
// measures peak goodput at exactly solver capacity, then offers -factor ×
// capacity with propagated client deadlines and measures goodput again.
// Optionally (-compare, on by default) it repeats the storm against an
// unprotected server to show the before/after contrast: without admission
// control every request is admitted, queue wait eats the client budget, and
// most answers arrive too late to count.
//
// Goodput is full-quality answers per second: HTTP 200 with a terminal
// solver status, not "deadline" and not tagged "quality":"degraded".
// Degraded answers and 429s are better than nothing — that is the point of
// the brownout ladder — but they do not count toward goodput.
//
// The process exits non-zero when the protected server's overload goodput
// falls below -min-goodput-frac of its own peak, making it usable as a CI
// gate (`make load`).
//
// Usage:
//
//	hslbload -factor 4 -peak 3s -storm 6s -min-goodput-frac 0.5
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hslb/internal/neos"
)

func main() {
	var (
		concurrency    = flag.Int("concurrency", 2, "solver slots on the servers under test")
		factor         = flag.Int("factor", 4, "overload multiple: storm clients = factor × concurrency")
		peakDur        = flag.Duration("peak", 3*time.Second, "duration of the peak (at-capacity) phase")
		stormDur       = flag.Duration("storm", 6*time.Second, "duration of each overload phase")
		budgetMult     = flag.Float64("budget-mult", 3, "client deadline = budget-mult × peak average latency")
		minGoodputFrac = flag.Float64("min-goodput-frac", 0.5, "fail unless protected overload goodput ≥ this fraction of peak")
		compare        = flag.Bool("compare", true, "also storm an unprotected server for contrast")
		jsonOut        = flag.Bool("json", false, "emit the report as JSON")
	)
	flag.Parse()

	protectedURL, closeProtected := startServer(*concurrency, true)
	defer closeProtected()

	// Unique model per request: goodput must measure real solves, not
	// cache hits.
	var nextID atomic.Uint64

	// Phase 1 — peak: exactly `concurrency` closed-loop clients, no
	// deadlines. This is the best the solver can do; everything after is
	// measured against it.
	peak := runPhase(phaseConfig{
		url:     protectedURL,
		clients: *concurrency,
		dur:     *peakDur,
		ids:     &nextID,
	})
	if peak.full == 0 {
		log.Fatal("peak phase produced no full-quality answers; cannot calibrate")
	}
	budget := time.Duration(*budgetMult * float64(peak.avgLatency()))
	if budget < 80*time.Millisecond {
		budget = 80 * time.Millisecond
	}
	if budget > 2*time.Second {
		budget = 2 * time.Second
	}

	// Phase 2 — storm the protected server at factor × capacity with the
	// calibrated client deadline propagated on every request.
	storm := runPhase(phaseConfig{
		url:     protectedURL,
		clients: *factor * *concurrency,
		dur:     *stormDur,
		budget:  budget,
		ids:     &nextID,
	})

	// Phase 3 (optional) — the same storm against an unprotected server.
	var baseline *phaseResult
	if *compare {
		baseURL, closeBase := startServer(*concurrency, false)
		r := runPhase(phaseConfig{
			url:     baseURL,
			clients: *factor * *concurrency,
			dur:     *stormDur,
			budget:  budget,
			ids:     &nextID,
		})
		closeBase()
		baseline = &r
	}

	frac := storm.goodput() / peak.goodput()
	report(*jsonOut, peak, storm, baseline, budget, frac)
	if frac < *minGoodputFrac {
		fmt.Fprintf(os.Stderr, "FAIL: protected goodput under %dx overload is %.0f%% of peak (need >= %.0f%%)\n",
			*factor, 100*frac, 100**minGoodputFrac)
		os.Exit(1)
	}
	fmt.Printf("PASS: protected goodput under %dx overload is %.0f%% of peak (threshold %.0f%%)\n",
		*factor, 100*frac, 100**minGoodputFrac)
}

// startServer runs an in-process solve service on a loopback port and
// returns its base URL plus a shutdown function.
func startServer(concurrency int, protected bool) (string, func()) {
	srv, err := neos.NewServerWith(neos.Config{
		MaxConcurrent: concurrency,
		SolveTimeout:  5 * time.Second,
		Overload:      neos.OverloadConfig{Enabled: protected},
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	return "http://" + ln.Addr().String(), func() {
		srv.BeginDrain()
		hs.Close()
		if err := srv.Close(); err != nil {
			log.Printf("close: %v", err)
		}
	}
}

// workModel emits a unique near-tie load-balancing model (8 components,
// N=2000) that takes the branch-and-bound a few tens of milliseconds: large
// enough that queueing is real, small enough that a storm finishes in
// seconds. The per-id coefficient perturbation makes every request a
// distinct cache key.
func workModel(id uint64) string {
	const k, n = 8, 2000
	var b strings.Builder
	fmt.Fprintf(&b, "param N := %d;\nvar T >= 0 <= 100000;\n", n)
	for j := 1; j <= k; j++ {
		fmt.Fprintf(&b, "var n%d integer >= 1 <= %d;\n", j, n)
	}
	b.WriteString("minimize total: T;\n")
	for j := 1; j <= k; j++ {
		fmt.Fprintf(&b, "subject to t%d: %0.6f / n%d + %0.6f <= T;\n",
			j, float64(n)*1.375+float64(j)*0.001+float64(id)*0.0001, j, float64(j)*1e-6)
	}
	b.WriteString("subject to cap: ")
	for j := 1; j <= k; j++ {
		if j > 1 {
			b.WriteString(" + ")
		}
		fmt.Fprintf(&b, "n%d", j)
	}
	fmt.Fprintf(&b, " <= N;\n")
	return b.String()
}

type phaseConfig struct {
	url     string
	clients int
	dur     time.Duration
	budget  time.Duration // 0 = no propagated deadline
	ids     *atomic.Uint64
}

type phaseResult struct {
	Clients  int           `json:"clients"`
	Budget   time.Duration `json:"budget_ns"`
	Elapsed  time.Duration `json:"elapsed_ns"`
	full     uint64
	degraded uint64
	late     uint64 // 200 with status "deadline": answered, but not full quality
	shed     uint64 // 429
	errors   uint64 // transport or unexpected status
	fullLat  int64  // summed latency of full-quality answers, ns

	Full     uint64  `json:"full"`
	Degraded uint64  `json:"degraded"`
	Late     uint64  `json:"late"`
	Shed     uint64  `json:"shed"`
	Errors   uint64  `json:"errors"`
	Goodput  float64 `json:"goodput_per_s"`
	AvgLatMs float64 `json:"avg_full_latency_ms"`
}

func (r *phaseResult) goodput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.full) / r.Elapsed.Seconds()
}

func (r *phaseResult) avgLatency() time.Duration {
	if r.full == 0 {
		return 0
	}
	return time.Duration(r.fullLat / int64(r.full))
}

func (r *phaseResult) finalize() {
	r.Full, r.Degraded, r.Late, r.Shed, r.Errors = r.full, r.degraded, r.late, r.shed, r.errors
	r.Goodput = r.goodput()
	r.AvgLatMs = float64(r.avgLatency()) / float64(time.Millisecond)
}

// runPhase drives `clients` closed-loop workers against url for dur. Each
// worker sends one request at a time; a shed worker honors the server's
// retry_after_ms hint (capped at one second) before trying again.
func runPhase(cfg phaseConfig) phaseResult {
	res := phaseResult{Clients: cfg.clients, Budget: cfg.budget}
	var mu sync.Mutex
	client := &http.Client{Timeout: 30 * time.Second}
	deadline := time.Now().Add(cfg.dur)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				id := cfg.ids.Add(1)
				outcome, lat, retry := doSolve(client, cfg.url, workModel(id), cfg.budget)
				mu.Lock()
				switch outcome {
				case "full":
					res.full++
					res.fullLat += int64(lat)
				case "degraded":
					res.degraded++
				case "late":
					res.late++
				case "shed":
					res.shed++
				default:
					res.errors++
				}
				mu.Unlock()
				if outcome == "shed" && retry > 0 {
					if retry > time.Second {
						retry = time.Second
					}
					time.Sleep(retry)
				}
			}
		}()
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	res.finalize()
	return res
}

// doSolve issues one /solve request and classifies the outcome. For 429s it
// returns the server's retry_after_ms backoff hint.
func doSolve(client *http.Client, url, model string, budget time.Duration) (outcome string, lat, retry time.Duration) {
	body, _ := json.Marshal(map[string]string{"model": model})
	req, err := http.NewRequest(http.MethodPost, url+"/solve", bytes.NewReader(body))
	if err != nil {
		return "error", 0, 0
	}
	req.Header.Set("Content-Type", "application/json")
	if budget > 0 {
		req.Header.Set("X-Request-Deadline-Ms", fmt.Sprintf("%d", budget.Milliseconds()))
	}
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return "error", 0, 0
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	lat = time.Since(start)
	switch resp.StatusCode {
	case http.StatusOK:
		var out struct {
			Status  string `json:"status"`
			Quality string `json:"quality"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return "error", lat, 0
		}
		switch {
		case out.Quality == "degraded":
			return "degraded", lat, 0
		case out.Status == "deadline":
			return "late", lat, 0
		case out.Status == "error":
			return "error", lat, 0
		default:
			return "full", lat, 0
		}
	case http.StatusTooManyRequests:
		var out struct {
			RetryAfterMs int64 `json:"retry_after_ms"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err == nil && out.RetryAfterMs > 0 {
			retry = time.Duration(out.RetryAfterMs) * time.Millisecond
		}
		return "shed", lat, retry
	default:
		return "error", lat, 0
	}
}

func report(asJSON bool, peak, storm phaseResult, baseline *phaseResult, budget time.Duration, frac float64) {
	if asJSON {
		out := map[string]interface{}{
			"peak":         peak,
			"storm":        storm,
			"budget_ms":    budget.Milliseconds(),
			"goodput_frac": frac,
		}
		if baseline != nil {
			out["unprotected"] = *baseline
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(out)
		return
	}
	fmt.Printf("client deadline for storm phases: %v (%.1fx peak avg latency %.1fms)\n",
		budget, float64(budget)/float64(peak.avgLatency()), peak.AvgLatMs)
	printPhase("peak      (protected, at capacity)", peak)
	printPhase("storm     (protected, overloaded) ", storm)
	if baseline != nil {
		printPhase("storm (unprotected, overloaded) ", *baseline)
		fmt.Printf("protected goodput %.1f/s vs unprotected %.1f/s under the same storm\n",
			storm.Goodput, baseline.Goodput)
	}
}

func printPhase(name string, r phaseResult) {
	fmt.Printf("%s: %d clients, %5.1fs: goodput %6.1f/s (full=%d degraded=%d late=%d shed429=%d err=%d, avg full latency %.1fms)\n",
		name, r.Clients, r.Elapsed.Seconds(), r.Goodput, r.Full, r.Degraded, r.Late, r.Shed, r.Errors, r.AvgLatMs)
}
