// Command hslbrouter runs the solve-fleet front tier: it consistent-hashes
// each request's canonical model digest onto a ring of hslbserver shards,
// so identical models always reach the shard that has them cached, spills
// hot digests by bounded-load placement, health-checks shards via /ready
// (with flap damping: -health-fails consecutive misses before demotion),
// and fails over in deterministic rendezvous order when a shard dies.
// Shard responses — including 429/503 Retry-After hints — relay verbatim.
//
// Usage:
//
//	hslbrouter -addr :8070 -shards http://shard0:8080,http://shard1:8080
//	hslbrouter -addr :8070 -shard-file fleet.shards
//
//	curl -s -X POST localhost:8070/solve -d '{"model":"var x >= 0 <= 9; maximize o: x;"}'
//	curl -s localhost:8070/metrics
//
// Ring membership is live: POST /admin/shards replaces the shard set on a
// running router, and with -shard-file a SIGHUP re-reads the file and
// applies it the same way (one shard per line, "URL" or "ID URL",
// #-comments allowed). Removed shards finish their in-flight requests.
//
// SIGINT/SIGTERM triggers a graceful shutdown: the listener closes and
// in-flight proxied requests drain (bounded by -drain-timeout).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hslb/internal/router"
)

// loadShardFile reads and parses a -shard-file into ShardSpecs.
func loadShardFile(path string) ([]router.ShardSpec, error) {
	text, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return router.ParseShardList(string(text))
}

func main() {
	addr := flag.String("addr", ":8070", "listen address")
	shards := flag.String("shards", "", "comma-separated hslbserver base URLs forming the ring")
	shardFile := flag.String("shard-file", "", "file listing shards (one per line, \"URL\" or \"ID URL\"); SIGHUP re-reads it and resizes the live ring")
	loadFactor := flag.Float64("load-factor", router.DefaultLoadFactor, "bounded-load headroom c > 1: a shard above c × its fair share of in-flight requests is demoted to last resort")
	healthInterval := flag.Duration("health-interval", 250*time.Millisecond, "/ready probe cadence (jittered ±25%)")
	healthTimeout := flag.Duration("health-timeout", time.Second, "per-probe timeout")
	healthFails := flag.Int("health-fails", 0, "consecutive failed probes before a shard is demoted (0 = default 3)")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "how long shutdown waits for in-flight requests")
	verbose := flag.Bool("v", false, "log health transitions, failovers, and resizes")
	flag.Parse()

	var urls []string
	for _, u := range strings.Split(*shards, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	var fileSpecs []router.ShardSpec
	if *shardFile != "" {
		if len(urls) > 0 {
			log.Fatal("hslbrouter: -shards and -shard-file are mutually exclusive")
		}
		specs, err := loadShardFile(*shardFile)
		if err != nil {
			log.Fatalf("hslbrouter: -shard-file: %v", err)
		}
		fileSpecs = specs
		for _, sp := range specs {
			urls = append(urls, sp.URL)
		}
	}
	if len(urls) == 0 {
		log.Fatal("hslbrouter: -shards or -shard-file is required")
	}

	cfg := router.Config{
		Shards:              urls,
		LoadFactor:          *loadFactor,
		HealthInterval:      *healthInterval,
		HealthTimeout:       *healthTimeout,
		HealthFailThreshold: *healthFails,
	}
	if *verbose {
		cfg.Logf = log.Printf
	}
	rt, err := router.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if len(fileSpecs) > 0 {
		// Re-apply the file's specs so explicit IDs ("ID URL" lines) take
		// effect; Config.Shards carries only URLs.
		if _, err := rt.SetShards(fileSpecs); err != nil {
			log.Fatalf("hslbrouter: applying -shard-file: %v", err)
		}
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("hslbrouter listening on %s, routing %d shard(s)\n", *addr, len(urls))

	// SIGHUP: re-read -shard-file and resize the live ring. A bad file or
	// rejected shard set leaves the current ring untouched.
	if *shardFile != "" {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				specs, err := loadShardFile(*shardFile)
				if err != nil {
					log.Printf("SIGHUP: %v (ring unchanged)", err)
					continue
				}
				res, err := rt.SetShards(specs)
				if err != nil {
					log.Printf("SIGHUP: %v (ring unchanged)", err)
					continue
				}
				log.Printf("SIGHUP: ring reloaded from %s: added %v removed %v kept %d",
					*shardFile, res.Added, res.Removed, len(res.Kept))
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("signal received; draining for up to %v", *drainTimeout)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("http shutdown: %v", err)
		}
		rt.Close()
		log.Println("shutdown complete")
	}
}
