// Command hslbrouter runs the solve-fleet front tier: it consistent-hashes
// each request's canonical model digest onto a ring of hslbserver shards,
// so identical models always reach the shard that has them cached, spills
// hot digests by bounded-load placement, health-checks shards via /ready,
// and fails over in deterministic rendezvous order when a shard dies.
// Shard responses — including 429/503 Retry-After hints — relay verbatim.
//
// Usage:
//
//	hslbrouter -addr :8070 -shards http://shard0:8080,http://shard1:8080
//
//	curl -s -X POST localhost:8070/solve -d '{"model":"var x >= 0 <= 9; maximize o: x;"}'
//	curl -s localhost:8070/metrics
//
// SIGINT/SIGTERM triggers a graceful shutdown: the listener closes and
// in-flight proxied requests drain (bounded by -drain-timeout).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hslb/internal/router"
)

func main() {
	addr := flag.String("addr", ":8070", "listen address")
	shards := flag.String("shards", "", "comma-separated hslbserver base URLs forming the ring (required)")
	loadFactor := flag.Float64("load-factor", router.DefaultLoadFactor, "bounded-load headroom c > 1: a shard above c × its fair share of in-flight requests is demoted to last resort")
	healthInterval := flag.Duration("health-interval", 250*time.Millisecond, "/ready probe cadence")
	healthTimeout := flag.Duration("health-timeout", time.Second, "per-probe timeout")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "how long shutdown waits for in-flight requests")
	verbose := flag.Bool("v", false, "log health transitions and failovers")
	flag.Parse()

	var urls []string
	for _, u := range strings.Split(*shards, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		log.Fatal("hslbrouter: -shards is required (comma-separated base URLs)")
	}

	cfg := router.Config{
		Shards:         urls,
		LoadFactor:     *loadFactor,
		HealthInterval: *healthInterval,
		HealthTimeout:  *healthTimeout,
	}
	if *verbose {
		cfg.Logf = log.Printf
	}
	rt, err := router.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("hslbrouter listening on %s, routing %d shard(s)\n", *addr, len(urls))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("signal received; draining for up to %v", *drainTimeout)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("http shutdown: %v", err)
		}
		rt.Close()
		log.Println("shutdown complete")
	}
}
