# Verify recipe for hslb. `make verify` is the gate a change must pass:
# tier-1 (build + full test suite) plus vet and a race-detector pass over
# the concurrent service packages (solve cache, job queue, HTTP server).

GO ?= go

.PHONY: verify build test vet race

verify: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/neos/... ./internal/solvecache/... ./internal/jobstore/...
