# Verify recipe for hslb. `make verify` is the gate a change must pass:
# tier-1 (build + full test suite) plus vet and a race-detector pass over
# the whole module — fault injection and the resilient gather exercise
# concurrency well outside the service packages, so the race pass covers
# everything.

GO ?= go

.PHONY: verify build test vet race chaos

verify: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fault-injection suite: the chaos pipeline acceptance scenario plus the
# resilient-gather and fault-plan tests. Seeds are fixed inside the tests,
# so every run injects the identical fault ledger.
chaos:
	$(GO) test -v -run 'TestChaosPipelineAcceptance|TestPipelineSolveDeadlineLadder' ./internal/core/
	$(GO) test -v -run 'TestResilientRun|TestInsufficientSamples|TestCheckpoint|TestRejectOutliers' ./internal/bench/
	$(GO) test -v -run 'TestFaultPlan|TestInjected' ./internal/cesm/
