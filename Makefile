# Verify recipe for hslb. `make verify` is the gate a change must pass:
# tier-1 (build + full test suite) plus vet and a race-detector pass over
# the whole module — fault injection and the resilient gather exercise
# concurrency well outside the service packages, so the race pass covers
# everything.

GO ?= go

.PHONY: verify build test vet fmt race chaos chaos-fleet bench bench-gate load fsck fleet load-fleet

verify: build vet fmt test race chaos-fleet load fsck fleet load-fleet bench-gate

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

# The experiments package alone needs ~17 minutes under the race detector
# on a 1-CPU container, past go test's default 10-minute per-package
# timeout, so the race pass gets explicit headroom.
race:
	$(GO) test -race -timeout 30m ./...

# Fault-injection suite: the chaos pipeline acceptance scenario plus the
# resilient-gather and fault-plan tests, with the parallel-path variants
# (worker-pool gather, concurrent NLP-BB) run under the race detector.
# Seeds are fixed inside the tests, so every run injects the identical
# fault ledger.
chaos:
	$(GO) test -v -run 'TestChaosPipelineAcceptance|TestPipelineSolveDeadlineLadder' ./internal/core/
	$(GO) test -v -run 'TestResilientRun|TestInsufficientSamples|TestCheckpoint|TestRejectOutliers' ./internal/bench/
	$(GO) test -v -run 'TestFaultPlan|TestInjected' ./internal/cesm/
	$(GO) test -v -race -run 'TestChaosPipelineWorkersInvariant' ./internal/core/
	$(GO) test -v -race -run 'TestParallelGather|TestRunLatency' ./internal/bench/
	$(GO) test -v -race -run 'TestParallelNLPBB' ./internal/minlp/
	$(GO) test -v -race -run 'TestChaosFleet' ./internal/fleet/
	$(GO) test -v -race -run 'TestWorkLeaseExpiryReclaim|TestWorkIdempotentComplete|TestLocalWorkerPanicReclaimed' ./internal/neos/
	$(GO) test -v -race -run 'TestLeaseConcurrentChaos|TestTornTailMidLeaseRecord' ./internal/jobstore/

# Self-healing-fleet suite, all under the race detector: the faultnet
# proxy's own fault repertoire (latency, partition, refuse, mid-stream
# cut), R-way replication with anti-entropy repair (including a replica
# push retried across a partition), peer-budget exhaustion against a
# partitioned peer, and the router's live-membership surface (resize under
# real traffic, in-flight completion on shard removal, flap damping,
# SetShards racing Pick/Order). Environments without a usable loopback
# listener self-skip the network-dependent tests with the reason recorded
# in the test log (t.Skip via requireLoopback).
chaos-fleet:
	$(GO) test -v -race -run 'TestProxy' ./internal/faultnet/
	$(GO) test -v -race -timeout 10m -run 'TestReplicate|TestAntiEntropy|TestPartitionedPeerDegradesWithinBudget|TestReplicationPushRetriesAcrossPartition' ./internal/neos/
	$(GO) test -v -race -run 'TestRouterLiveResizeUnderTraffic|TestRouterRemovedShardInflightCompletes|TestAdminShardsRejectsBadSets|TestRouterFlapDamping|TestRingSetShardsConcurrentWithPick' ./internal/router/

# Sequential-vs-parallel timing for the three hot paths (gather campaign,
# deterministic NLP-BB solve ladder, racing-mode portfolio solve); writes
# BENCH_parallel.json, fails if a stage's determinism contract is violated,
# and — on hosts with >= 4 CPUs — fails unless racing mode is at least 1.5x
# faster than sequential at 4 workers (on smaller hosts the speedup gate is
# skipped with the reason logged and recorded in the report).
bench:
	$(GO) run ./cmd/hslbbench -o BENCH_parallel.json

# The verify-time subset of `bench`: gather identity plus the race stage
# (agreement ladder + speedup gate), without the long deterministic solve
# ladder. The report goes to a scratch file so the committed
# BENCH_parallel.json only changes when `make bench` is run deliberately.
bench-gate:
	@out="$$(mktemp)"; trap 'rm -f "$$out"' EXIT; \
	$(GO) run ./cmd/hslbbench -stages gather,race -o "$$out"

# Result-store integrity: run a small fixed-seed campaign into a scratch
# store, then fsck it — an end-to-end walk of the content-addressed chunk
# tree that fails on any hash mismatch or missing chunk.
fsck:
	@dir="$$(mktemp -d)"; trap 'rm -rf "$$dir"' EXIT; \
	$(GO) run ./cmd/hslb -nodes 64 -points 4 -repeats 1 \
		-store-dir "$$dir" -campaign verify >/dev/null && \
	$(GO) run ./cmd/hslb fsck -store-dir "$$dir"

# Fleet acceptance: 1 hslbserver + 3 hslbworker real processes; one worker
# is SIGKILLed provably mid-solve, and the scenario fails unless every job
# still reaches a terminal state with the correct result, the killed
# worker's lease is reclaimed by TTL expiry, and replaying the batch
# through POST /solve costs zero solver invocations (fleet results warmed
# the cache). Runs in ~10s.
fleet:
	$(GO) run ./cmd/hslbfleet -jobs 12 -workers 3

# Sharded-fleet acceptance: real hslbserver shards behind a real hslbrouter
# process. Measures goodput scaling 1 -> 4 shards through the router (the
# >= 3x gate applies only on hosts with >= 4 CPUs; smaller hosts skip it
# with the reason logged and recorded in the report), proves a cache-peering
# warm end to end (a shard answers a model it never solved with zero solver
# invocations), and SIGKILLs a shard with requests provably in flight to
# check every request still gets exactly one terminal outcome. Writes
# BENCH_fleet.json. Runs in ~20s.
load-fleet:
	$(GO) run ./cmd/hslbloadfleet -phase 2s -clients 8 -o BENCH_fleet.json

# Overload acceptance: a closed-loop generator measures peak goodput at
# solver capacity, then storms the protected server at 4x capacity with
# propagated client deadlines (plus an unprotected server for contrast) and
# fails unless protected goodput stays >= 50% of peak. Runs in ~15s.
load:
	$(GO) run ./cmd/hslbload -peak 3s -storm 5s -min-goodput-frac 0.5
