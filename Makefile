# Verify recipe for hslb. `make verify` is the gate a change must pass:
# tier-1 (build + full test suite) plus vet and a race-detector pass over
# the whole module — fault injection and the resilient gather exercise
# concurrency well outside the service packages, so the race pass covers
# everything.

GO ?= go

.PHONY: verify build test vet race chaos bench

verify: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fault-injection suite: the chaos pipeline acceptance scenario plus the
# resilient-gather and fault-plan tests, with the parallel-path variants
# (worker-pool gather, concurrent NLP-BB) run under the race detector.
# Seeds are fixed inside the tests, so every run injects the identical
# fault ledger.
chaos:
	$(GO) test -v -run 'TestChaosPipelineAcceptance|TestPipelineSolveDeadlineLadder' ./internal/core/
	$(GO) test -v -run 'TestResilientRun|TestInsufficientSamples|TestCheckpoint|TestRejectOutliers' ./internal/bench/
	$(GO) test -v -run 'TestFaultPlan|TestInjected' ./internal/cesm/
	$(GO) test -v -race -run 'TestChaosPipelineWorkersInvariant' ./internal/core/
	$(GO) test -v -race -run 'TestParallelGather|TestRunLatency' ./internal/bench/
	$(GO) test -v -race -run 'TestParallelNLPBB' ./internal/minlp/

# Sequential-vs-parallel timing for the two hot paths (gather campaign,
# NLP-BB solve ladder); writes BENCH_parallel.json and fails if parallel
# results are not identical to sequential.
bench:
	$(GO) run ./cmd/hslbbench -o BENCH_parallel.json
